#include "gepeto/attacks/privacy_verifier.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "common/check.h"

namespace gepeto::core {

namespace {

std::string trace_tag(std::int32_t uid, std::int64_t ts) {
  std::ostringstream os;
  os << "user " << uid << " @ " << ts;
  return os.str();
}

/// Released coordinate of a trace under the cloaking contract, or nullopt
/// (suppression) — the contract's own sequential oracle.
struct CloakOracle {
  const CloakingContract& contract;
  /// Distinct-user census per level, keyed by (cy, cx).
  std::vector<std::map<std::pair<std::int64_t, std::int64_t>,
                       std::set<std::int32_t>>>
      levels;

  explicit CloakOracle(const geo::GeolocatedDataset& original,
                       const CloakingContract& c)
      : contract(c),
        levels(static_cast<std::size_t>(c.max_doublings) + 1) {
    for (const auto& [uid, trail] : original)
      for (const auto& t : trail)
        for (int l = 0; l <= c.max_doublings; ++l) {
          const GridCell cell =
              grid_cell_of(t.latitude, t.longitude, c.base_cell_m, l);
          levels[static_cast<std::size_t>(l)][{cell.cy, cell.cx}].insert(uid);
        }
  }

  /// True (and fills the center) when the trace is released under the
  /// contract: smallest level whose cell holds >= k distinct users.
  bool released_center(const geo::MobilityTrace& t, double& lat,
                       double& lon) const {
    for (int l = 0; l <= contract.max_doublings; ++l) {
      const GridCell cell =
          grid_cell_of(t.latitude, t.longitude, contract.base_cell_m, l);
      const auto& users =
          levels[static_cast<std::size_t>(l)].at({cell.cy, cell.cx});
      if (static_cast<int>(users.size()) >= contract.k) {
        grid_cell_center(cell, contract.base_cell_m, lat, lon);
        return true;
      }
    }
    return false;
  }
};

using Coord = std::pair<double, double>;

/// Release-codec quantum: dataset lines carry %.6f coordinates (geolife.cc),
/// so a released center matches the mandated one only on the 1e-6 degree
/// grid (~0.11 m — far below any cell size). Both sides of the comparison
/// are canonicalized to that grid; an in-memory release (full-precision
/// doubles) and a DFS release (text round-tripped) then verify identically.
double codec_round(double deg) { return std::round(deg * 1e6) / 1e6; }

/// The shared mix-zone checker: `owner_of` maps a released id to its
/// original user (populated either from MixZoneResult::pseudonym_owner or by
/// exact trace matching).
PrivacyReport verify_mix_zones_impl(
    const geo::GeolocatedDataset& original,
    const geo::GeolocatedDataset& released,
    const std::vector<MixZone>& zones,
    const std::map<std::int32_t, std::int32_t>& owner_of,
    PrivacyReport report) {
  const ZoneIndex index(zones);

  std::set<std::int32_t> original_ids;
  for (const auto& [uid, trail] : original) original_ids.insert(uid);

  // Contract 1: nothing released inside a zone (boundary inclusive).
  for (const auto& [pid, trail] : released)
    for (const auto& t : trail) {
      ++report.checks;
      if (index.contains(t))
        report.add_violation("mixzone.zone_leak",
                             trace_tag(pid, t.timestamp) +
                                 " released inside a mix zone");
    }

  // Contract 2: pseudonyms collide with no other live id. A released id is
  // either its owner's original id (the pre-first-crossing segment) or a
  // fresh pseudonym that must not equal *any* original user id.
  for (const auto& [pid, trail] : released) {
    ++report.checks;
    const auto it = owner_of.find(pid);
    if (it == owner_of.end()) {
      report.add_violation("mixzone.fabricated",
                           "released id " + std::to_string(pid) +
                               " has no original owner");
      continue;
    }
    if (pid != it->second && original_ids.count(pid) > 0)
      report.add_violation(
          "mixzone.collision",
          "pseudonym " + std::to_string(pid) + " of user " +
              std::to_string(it->second) +
              " equals the live id of another user");
  }

  // Contract 3: per owner, the released traces equal the original
  // out-of-zone traces exactly, and the released-id sequence changes exactly
  // at crossing boundaries, each time to an id never used before (by anyone:
  // cross-user reuse is how a linking attacker merges strangers).
  std::map<std::int32_t,
           std::vector<std::pair<std::int32_t, geo::MobilityTrace>>>
      released_by_owner;  // owner -> (released id, trace), time-ordered
  for (const auto& [pid, trail] : released) {
    const auto it = owner_of.find(pid);
    if (it == owner_of.end()) continue;  // already reported
    auto& seq = released_by_owner[it->second];
    for (const auto& t : trail) seq.emplace_back(pid, t);
  }
  for (auto& [owner, seq] : released_by_owner)
    std::stable_sort(seq.begin(), seq.end(),
                     [](const auto& a, const auto& b) {
                       return a.second.timestamp < b.second.timestamp;
                     });

  std::set<std::int32_t> ids_seen;  // across all users: global uniqueness
  std::uint64_t expected_suppressed = 0;
  for (const auto& [uid, trail] : original) {
    const auto it = released_by_owner.find(uid);
    static const std::vector<std::pair<std::int32_t, geo::MobilityTrace>>
        kEmpty;
    const auto& seq = it == released_by_owner.end() ? kEmpty : it->second;

    std::size_t pos = 0;           // cursor into the released sequence
    bool inside = false;           // walking the original trail
    bool fresh_segment = true;     // next released trace starts a segment
    std::int32_t segment_id = uid; // expected id of the current segment
    for (const auto& t : trail) {
      if (index.contains(t)) {
        ++expected_suppressed;
        ++report.checks;
        inside = true;
        continue;
      }
      if (inside) {
        fresh_segment = true;
        inside = false;
      }
      ++report.checks;
      if (pos >= seq.size()) {
        report.add_violation("mixzone.missing",
                             trace_tag(uid, t.timestamp) +
                                 " (out of zone) absent from the release");
        continue;
      }
      const auto& [pid, rt] = seq[pos++];
      if (rt.timestamp != t.timestamp || rt.latitude != t.latitude ||
          rt.longitude != t.longitude) {
        report.add_violation("mixzone.altered",
                             trace_tag(uid, t.timestamp) +
                                 " released with altered fields");
        continue;
      }
      if (fresh_segment) {
        // First trace of a segment: segment 0 keeps the original id; later
        // segments must switch to an id the whole release never used.
        const bool first_segment = ids_seen.count(uid) == 0 && pid == uid;
        if (!first_segment && !ids_seen.insert(pid).second)
          report.add_violation("mixzone.pseudonym_reuse",
                               "id " + std::to_string(pid) +
                                   " reused across zone crossings");
        if (first_segment) ids_seen.insert(uid);
        segment_id = pid;
        fresh_segment = false;
      } else if (pid != segment_id) {
        report.add_violation("mixzone.segment_split",
                             trace_tag(uid, t.timestamp) +
                                 " changed pseudonym without a crossing");
        segment_id = pid;
      }
    }
    if (pos < seq.size()) {
      ++report.checks;
      report.add_violation(
          "mixzone.fabricated",
          "owner " + std::to_string(uid) + " has " +
              std::to_string(seq.size() - pos) + " extra released traces");
    }
  }

  // Conservation: suppressed + released == original.
  ++report.checks;
  const std::uint64_t total_released = released.num_traces();
  if (total_released + expected_suppressed != original.num_traces())
    report.add_violation(
        "mixzone.conservation",
        std::to_string(total_released) + " released + " +
            std::to_string(expected_suppressed) + " in-zone != " +
            std::to_string(original.num_traces()) + " original traces");
  return report;
}

}  // namespace

void PrivacyReport::add_violation(std::string contract, std::string detail) {
  ++violation_count;
  if (violations.size() < kMaxRecordedViolations)
    violations.push_back({std::move(contract), std::move(detail)});
}

void PrivacyReport::merge(const PrivacyReport& other) {
  checks += other.checks;
  violation_count += other.violation_count;
  for (const auto& v : other.violations) {
    if (violations.size() >= kMaxRecordedViolations) break;
    violations.push_back(v);
  }
}

std::string PrivacyReport::summary() const {
  std::ostringstream os;
  os << checks << " checks, " << violation_count << " violations";
  if (!violations.empty())
    os << " (first: " << violations.front().contract << " — "
       << violations.front().detail << ")";
  return os.str();
}

PrivacyReport verify_cloaking(const geo::GeolocatedDataset& original,
                              const geo::GeolocatedDataset& released,
                              const CloakingContract& contract) {
  GEPETO_CHECK(contract.k >= 1 && contract.base_cell_m > 0.0 &&
               contract.max_doublings >= 0);
  PrivacyReport report;
  const CloakOracle oracle(original, contract);

  // Expected release per (user, timestamp): the contract-mandated centers
  // (multisets — adversarial datasets may repeat timestamps).
  std::map<std::pair<std::int32_t, std::int64_t>, std::multiset<Coord>>
      expected;
  for (const auto& [uid, trail] : original)
    for (const auto& t : trail) {
      double lat = 0, lon = 0;
      if (oracle.released_center(t, lat, lon))
        expected[{uid, t.timestamp}].insert(
            {codec_round(lat), codec_round(lon)});
    }

  std::map<std::pair<std::int32_t, std::int64_t>, std::multiset<Coord>> got;
  for (const auto& [uid, trail] : released) {
    if (!original.has_user(uid)) {
      ++report.checks;
      report.add_violation("cloak.fabricated",
                           "released user " + std::to_string(uid) +
                               " does not exist in the original");
      continue;
    }
    for (const auto& t : trail)
      got[{uid, t.timestamp}].insert(
          {codec_round(t.latitude), codec_round(t.longitude)});
  }

  // Per (user, timestamp): the released multiset must be bit-identical to
  // the contract's. This one comparison carries the whole contract — the
  // >= k distinct-user census, minimal cell level, pure-function-of-the-cell
  // centers, and suppression — because `expected` was derived from nothing
  // but the original dataset and the declared parameters.
  auto ei = expected.begin();
  auto gi = got.begin();
  while (ei != expected.end() || gi != got.end()) {
    ++report.checks;
    if (gi == got.end() || (ei != expected.end() && ei->first < gi->first)) {
      report.add_violation("cloak.missing",
                           trace_tag(ei->first.first, ei->first.second) +
                               " mandated by the contract but not released");
      ++ei;
      continue;
    }
    if (ei == expected.end() || gi->first < ei->first) {
      report.add_violation("cloak.suppression",
                           trace_tag(gi->first.first, gi->first.second) +
                               " released but mandated suppressed");
      ++gi;
      continue;
    }
    if (ei->second != gi->second)
      report.add_violation(
          "cloak.k_anonymity",
          trace_tag(ei->first.first, ei->first.second) +
              " released at a coordinate that is not the >=k-user cell "
              "center the contract mandates");
    ++ei;
    ++gi;
  }
  return report;
}

PrivacyReport verify_mix_zones(const geo::GeolocatedDataset& original,
                               const MixZoneResult& result,
                               const std::vector<MixZone>& zones) {
  PrivacyReport report;
  std::map<std::int32_t, std::int32_t> owner_of;
  for (const auto& [pid, owner] : result.pseudonym_owner) {
    ++report.checks;
    const auto [it, inserted] = owner_of.emplace(pid, owner);
    if (!inserted && it->second != owner)
      report.add_violation("mixzone.pseudonym_reuse",
                           "id " + std::to_string(pid) +
                               " claimed by users " +
                               std::to_string(it->second) + " and " +
                               std::to_string(owner));
  }
  report = verify_mix_zones_impl(original, result.data, zones, owner_of,
                                 std::move(report));
  ++report.checks;
  if (result.suppressed_traces + result.data.num_traces() !=
      original.num_traces())
    report.add_violation("mixzone.conservation",
                         "reported suppressed_traces inconsistent with the "
                         "release size");
  return report;
}

PrivacyReport verify_mix_zones_release(const geo::GeolocatedDataset& original,
                                       const geo::GeolocatedDataset& released,
                                       const std::vector<MixZone>& zones) {
  PrivacyReport report;

  // Re-derive each released id's owner by exact observation matching: mix
  // zones never alter (timestamp, coordinates), so a released trace's owner
  // is whichever original user logged that exact observation.
  std::map<std::tuple<std::int64_t, double, double>, std::set<std::int32_t>>
      observed_by;
  for (const auto& [uid, trail] : original)
    for (const auto& t : trail)
      observed_by[{t.timestamp, t.latitude, t.longitude}].insert(uid);

  std::map<std::int32_t, std::int32_t> owner_of;
  for (const auto& [pid, trail] : released) {
    std::set<std::int32_t> candidates;
    bool first = true;
    for (const auto& t : trail) {
      const auto it =
          observed_by.find({t.timestamp, t.latitude, t.longitude});
      std::set<std::int32_t> here =
          it == observed_by.end() ? std::set<std::int32_t>{} : it->second;
      if (first) {
        candidates = std::move(here);
        first = false;
      } else {
        std::set<std::int32_t> both;
        std::set_intersection(candidates.begin(), candidates.end(),
                              here.begin(), here.end(),
                              std::inserter(both, both.begin()));
        candidates = std::move(both);
      }
    }
    ++report.checks;
    if (candidates.size() == 1) {
      owner_of.emplace(pid, *candidates.begin());
    } else if (candidates.empty()) {
      report.add_violation("mixzone.fabricated",
                           "released id " + std::to_string(pid) +
                               " matches no original user's observations");
    } else {
      report.add_violation("mixzone.unverifiable",
                           "released id " + std::to_string(pid) +
                               " matches several original users");
    }
  }
  return verify_mix_zones_impl(original, released, zones, owner_of,
                               std::move(report));
}

}  // namespace gepeto::core
