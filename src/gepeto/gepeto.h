// The GEPETO facade: one object owning the simulated cluster (DFS + config)
// with the toolkit's operations as methods. This is the public entry point
// the examples and benches use; each method forwards to the module that
// implements it (sampling.h, kmeans.h, djcluster.h, rtree_mr.h, sanitize.h).
#pragma once

#include <memory>
#include <string>

#include "geo/trace.h"
#include "gepeto/attacks/fingerprint.h"
#include "gepeto/attacks/od_matrix.h"
#include "gepeto/attacks/privacy_verifier.h"
#include "gepeto/djcluster.h"
#include "gepeto/kmeans.h"
#include "gepeto/rtree_mr.h"
#include "gepeto/sampling.h"
#include "gepeto/sanitize.h"
#include "mapreduce/cluster.h"
#include "mapreduce/dfs.h"
#include "workflow/flow.h"

namespace gepeto::core {

class Gepeto {
 public:
  explicit Gepeto(const mr::ClusterConfig& cluster)
      : cluster_(cluster), dfs_(std::make_unique<mr::Dfs>(cluster)) {
    cluster_.validate();
  }

  mr::Dfs& dfs() { return *dfs_; }
  const mr::ClusterConfig& cluster() const { return cluster_; }

  /// Load a dataset into the DFS under `path` as `num_files` files.
  void load_dataset(const geo::GeolocatedDataset& dataset,
                    const std::string& path, int num_files = 4);

  /// Read back a dataset (or any job output of dataset lines).
  geo::GeolocatedDataset read_dataset(const std::string& prefix) const;

  std::uint64_t count_records(const std::string& prefix) const;

  // --- the MapReduced GEPETO operations -----------------------------------

  mr::JobResult sample(const std::string& input, const std::string& output,
                       const SamplingConfig& config);

  KMeansResult kmeans(const std::string& input,
                      const std::string& clusters_path,
                      const KMeansConfig& config);

  DjMapReduceResult djcluster(const std::string& input,
                              const std::string& work_prefix,
                              const DjClusterConfig& config);

  RTreeMrResult build_rtree(const std::string& input,
                            const std::string& work_prefix,
                            const RTreeMrConfig& config);

  mr::JobResult mask(const std::string& input, const std::string& output,
                     double sigma_m, std::uint64_t seed);

  mr::JobResult round(const std::string& input, const std::string& output,
                      double cell_m);

  CloakingMrResult cloak(const std::string& input,
                         const std::string& work_prefix, int k,
                         double base_cell_m, int max_doublings = 6);

  MixZoneMrResult mix_zones(const std::string& input,
                            const std::string& work_prefix,
                            const std::vector<MixZone>& zones,
                            std::uint64_t seed = kPseudonymSeed);

  // --- the privacy attack suite (attacks/) --------------------------------

  /// POI-fingerprint linking between two sanitized releases of the same
  /// population (attacks/fingerprint.h).
  LinkAttackMrResult link_attack(
      const std::string& probe_input, const std::string& gallery_input,
      const std::string& work_prefix, const FingerprintConfig& config,
      const std::map<std::int32_t, std::int32_t>& probe_owner = {},
      const std::map<std::int32_t, std::int32_t>& gallery_owner = {});

  /// k-anonymous origin-destination matrix (attacks/od_matrix.h).
  OdMatrixMrResult od_matrix(const std::string& input,
                             const std::string& work_prefix,
                             const OdConfig& config);

  /// Execute a JobFlow DAG on this cluster (see workflow/flow.h). Compose
  /// nodes via flow::Flow + the add_*_nodes helpers of the modules.
  flow::FlowResult run_flow(flow::Flow& f,
                            const flow::FlowOptions& options = {});

 private:
  mr::ClusterConfig cluster_;
  std::unique_ptr<mr::Dfs> dfs_;
};

}  // namespace gepeto::core
