#include "gepeto/rtree_mr.h"

#include <algorithm>
#include <charconv>

#include "common/check.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "geo/geolife.h"
#include "gepeto/djcluster.h"  // pack_trace_id
#include "mapreduce/engine.h"

namespace gepeto::core {

namespace {

struct ScalarValue {
  std::uint64_t scalar = 0;
  std::uint64_t serialized_size() const { return 8; }
};

/// Algorithm 6: sample objects from the chunk and emit their curve scalars.
struct SampleMapper {
  using OutKey = std::int32_t;
  using OutValue = ScalarValue;

  index::ScalarMapper curve;
  int samples_per_chunk;
  std::uint64_t seed;

  Rng rng{seed};
  std::vector<std::uint64_t> reservoir;
  std::uint64_t seen = 0;

  void setup(mr::TaskContext& ctx) {
    // Independent deterministic stream per task.
    rng.reseed(seed ^ (static_cast<std::uint64_t>(ctx.task_index()) + 1) *
                          0x9e3779b97f4a7c15ULL);
  }

  void map(std::int64_t, std::string_view line,
           mr::MapContext<OutKey, OutValue>& ctx) {
    geo::MobilityTrace t;
    if (!geo::parse_dataset_line(line, t)) {
      ctx.increment("rtree.malformed_lines");
      return;
    }
    const std::uint64_t s = curve.scalar(t.latitude, t.longitude);
    ++seen;
    if (reservoir.size() < static_cast<std::size_t>(samples_per_chunk)) {
      reservoir.push_back(s);
    } else {
      const std::uint64_t j = rng.uniform_u64(seen);
      if (j < static_cast<std::uint64_t>(samples_per_chunk)) reservoir[j] = s;
    }
  }

  void cleanup(mr::MapContext<OutKey, OutValue>& ctx) {
    for (std::uint64_t s : reservoir) ctx.emit(0, {s});
  }
};

/// Algorithm 7: order the sampled scalars and emit the partition points.
struct BoundaryReducer {
  int num_partitions;

  void reduce(const std::int32_t&, std::span<const ScalarValue> values,
              mr::ReduceContext& ctx) {
    std::vector<std::uint64_t> scalars;
    scalars.reserve(values.size());
    for (const auto& v : values) scalars.push_back(v.scalar);
    std::sort(scalars.begin(), scalars.end());
    // k-1 partition points at the sample quantiles.
    for (int p = 1; p < num_partitions; ++p) {
      const std::size_t idx =
          scalars.size() * static_cast<std::size_t>(p) /
          static_cast<std::size_t>(num_partitions);
      ctx.write(std::to_string(scalars[std::min(idx, scalars.size() - 1)]));
    }
  }
};

struct EntryValue {
  index::RTreeEntry entry;
  std::uint64_t serialized_size() const { return 24; }
};

/// Algorithm 8: assign each object to a partition via the curve scalar and
/// the phase-1 partition points (from the distributed cache).
struct PartitionMapper {
  using OutKey = std::int32_t;
  using OutValue = EntryValue;

  index::ScalarMapper curve;
  std::string boundaries_file;
  std::vector<std::uint64_t> boundaries;

  void setup(mr::TaskContext& ctx) {
    const std::string_view data = ctx.cache_file(boundaries_file);
    std::size_t start = 0;
    while (start < data.size()) {
      std::size_t end = data.find('\n', start);
      if (end == std::string_view::npos) end = data.size();
      const std::string_view line = data.substr(start, end - start);
      if (!line.empty()) {
        std::uint64_t b = 0;
        std::from_chars(line.data(), line.data() + line.size(), b);
        boundaries.push_back(b);
      }
      start = end + 1;
    }
    GEPETO_CHECK(std::is_sorted(boundaries.begin(), boundaries.end()));
  }

  void map(std::int64_t, std::string_view line,
           mr::MapContext<OutKey, OutValue>& ctx) {
    geo::MobilityTrace t;
    if (!geo::parse_dataset_line(line, t)) {
      ctx.increment("rtree.malformed_lines");
      return;
    }
    const std::uint64_t s = curve.scalar(t.latitude, t.longitude);
    const auto p = partition_of_scalar(s, boundaries);
    ctx.emit(static_cast<std::int32_t>(p),
             {{t.latitude, t.longitude, pack_trace_id(t.user_id, t.timestamp)}});
  }
};

/// Algorithm 9: build the R-Tree of one partition and emit it serialized
/// (newlines folded into ';' so the tree travels as one output record).
struct BuildReducer {
  int max_entries;

  void reduce(const std::int32_t& partition,
              std::span<const EntryValue> values, mr::ReduceContext& ctx) {
    std::vector<index::RTreeEntry> entries;
    entries.reserve(values.size());
    for (const auto& v : values) entries.push_back(v.entry);
    index::RTree tree(max_entries);
    tree.bulk_load_str(entries);
    std::string payload = tree.serialize();
    std::replace(payload.begin(), payload.end(), '\n', ';');
    std::string line = "tree," + std::to_string(partition) + "," +
                       std::to_string(entries.size()) + ",";
    line += payload;
    ctx.write(line);
    ctx.increment("rtree.partition_trees");
  }
};

}  // namespace

std::size_t partition_of_scalar(std::uint64_t scalar,
                                const std::vector<std::uint64_t>& boundaries) {
  return static_cast<std::size_t>(
      std::upper_bound(boundaries.begin(), boundaries.end(), scalar) -
      boundaries.begin());
}

std::shared_ptr<RTreeFlowState> add_rtree_nodes(flow::Flow& f,
                                                const std::string& input,
                                                const std::string& work_prefix,
                                                const RTreeMrConfig& config) {
  GEPETO_CHECK(config.num_partitions >= 1);
  GEPETO_CHECK(config.samples_per_chunk >= config.num_partitions);
  auto st = std::make_shared<RTreeFlowState>();
  st->tree = index::RTree(config.rtree_max_entries);

  const std::string points = work_prefix + "/partition-points";
  const std::string boundaries_file = work_prefix + "/boundaries";
  const std::string small_trees = work_prefix + "/small-trees";

  // The curve needs the data bounds; the driver derives them with one cheap
  // scan (in a Hadoop deployment this is a known property of the dataset or
  // one counting job). The curve parameters travel to the later phases
  // through the shared state, hence their explicit after() edges.
  {
    const index::CurveKind kind = config.curve;
    const int order = config.sfc_order;
    f.add_native("rtree-bounds",
                 [st, input, kind, order](flow::FlowEngine& e) {
                   index::Rect bounds;
                   for (const auto& path : e.dfs().list(input)) {
                     const std::string_view data = e.dfs().read(path);
                     std::size_t start = 0;
                     while (start < data.size()) {
                       std::size_t end = data.find('\n', start);
                       if (end == std::string_view::npos) end = data.size();
                       geo::MobilityTrace t;
                       if (geo::parse_dataset_line(
                               data.substr(start, end - start), t))
                         bounds.expand(
                             index::Rect::point(t.latitude, t.longitude));
                       start = end + 1;
                     }
                   }
                   GEPETO_CHECK_MSG(bounds.valid(),
                                    "no parsable traces under " << input);
                   st->bounds = bounds;
                   st->curve.emplace(kind, bounds, order);
                 })
        .reads(input);
  }

  // --- Phase 1: sample + partition points ---------------------------------
  {
    const int samples = config.samples_per_chunk;
    const std::uint64_t seed = config.seed;
    const int partitions = config.num_partitions;
    const mr::FailurePolicy failures = config.failures;
    const mr::FaultPlan fault_plan = config.fault_plan;
    f.add_mapreduce("rtree-phase1-sample",
                    [st, input, points, samples, seed, partitions, failures,
                     fault_plan](flow::FlowEngine& e) {
                      mr::JobConfig p1;
                      p1.name = "rtree-phase1-sample";
                      p1.input = input;
                      p1.output = points;
                      p1.num_reducers = 1;
                      p1.failures = failures;
                      p1.fault_plan = fault_plan;
                      const index::ScalarMapper curve = *st->curve;
                      return mr::run_mapreduce_job(
                          e.dfs(), e.cluster(), p1,
                          [curve, samples, seed] {
                            return SampleMapper{curve, samples, seed,
                                                Rng(seed), {}, 0};
                          },
                          [partitions] { return BoundaryReducer{partitions}; });
                    })
        .reads(input)
        .writes(points)
        .after("rtree-bounds");
  }

  // Consolidate the reducer's part file into a single cache file.
  f.add_native("rtree-boundaries",
               [st, points, boundaries_file](flow::FlowEngine& e) {
                 std::string boundary_lines;
                 for (const auto& part : e.dfs().list(points + "/"))
                   boundary_lines += e.dfs().read(part);
                 e.dfs().put(boundaries_file, boundary_lines);
                 std::size_t start = 0;
                 const std::string_view data = boundary_lines;
                 while (start < data.size()) {
                   std::size_t end = data.find('\n', start);
                   if (end == std::string_view::npos) end = data.size();
                   const std::string_view line =
                       data.substr(start, end - start);
                   if (!line.empty()) {
                     std::uint64_t b = 0;
                     std::from_chars(line.data(), line.data() + line.size(),
                                     b);
                     st->boundaries.push_back(b);
                   }
                   start = end + 1;
                 }
               })
      .reads(points)
      .writes(boundaries_file);

  // --- Phase 2: partition + per-partition builds ---------------------------
  {
    const int partitions = config.num_partitions;
    const int max_entries = config.rtree_max_entries;
    const mr::FailurePolicy failures = config.failures;
    const mr::FaultPlan fault_plan = config.fault_plan;
    f.add_mapreduce("rtree-phase2-build",
                    [st, input, boundaries_file, small_trees, partitions,
                     max_entries, failures, fault_plan](flow::FlowEngine& e) {
                      mr::JobConfig p2;
                      p2.name = "rtree-phase2-build";
                      p2.input = input;
                      p2.output = small_trees;
                      p2.num_reducers = partitions;
                      p2.cache_files = {boundaries_file};
                      p2.failures = failures;
                      p2.fault_plan = fault_plan;
                      const index::ScalarMapper curve = *st->curve;
                      return mr::run_mapreduce_job(
                          e.dfs(), e.cluster(), p2,
                          [curve, boundaries_file] {
                            return PartitionMapper{curve, boundaries_file, {}};
                          },
                          [max_entries] { return BuildReducer{max_entries}; });
                    })
        .reads(input)
        .reads(boundaries_file)
        .writes(small_trees)
        .after("rtree-bounds");
  }

  // --- Phase 3: sequential merge -------------------------------------------
  {
    const int partitions = config.num_partitions;
    f.add_native(
         "rtree-merge",
         [st, small_trees, partitions](flow::FlowEngine& e) {
           Stopwatch merge_watch;
           st->partition_sizes.assign(static_cast<std::size_t>(partitions), 0);
           for (const auto& part : e.dfs().list(small_trees + "/")) {
             const std::string_view data = e.dfs().read(part);
             std::size_t start = 0;
             while (start < data.size()) {
               std::size_t end = data.find('\n', start);
               if (end == std::string_view::npos) end = data.size();
               const std::string_view line = data.substr(start, end - start);
               if (line.rfind("tree,", 0) == 0) {
                 // tree,<partition>,<count>,<payload-with-;-newlines>
                 std::size_t c1 = line.find(',', 5);
                 std::size_t c2 = line.find(',', c1 + 1);
                 GEPETO_CHECK(c1 != std::string_view::npos &&
                              c2 != std::string_view::npos);
                 std::int32_t partition = 0;
                 std::uint64_t count = 0;
                 std::from_chars(line.data() + 5, line.data() + c1, partition);
                 std::from_chars(line.data() + c1 + 1, line.data() + c2,
                                 count);
                 std::string payload(line.substr(c2 + 1));
                 std::replace(payload.begin(), payload.end(), ';', '\n');
                 const index::RTree small = index::RTree::deserialize(payload);
                 GEPETO_CHECK(small.size() == count);
                 GEPETO_CHECK(partition >= 0 && partition < partitions);
                 st->partition_sizes[static_cast<std::size_t>(partition)] =
                     count;
                 st->tree.merge(small);
               }
               start = end + 1;
             }
           }
           st->merge_real_seconds = merge_watch.seconds();
         })
        .reads(small_trees);
  }
  return st;
}

RTreeMrResult build_rtree_mapreduce(mr::Dfs& dfs,
                                    const mr::ClusterConfig& cluster,
                                    const std::string& input,
                                    const std::string& work_prefix,
                                    const RTreeMrConfig& config) {
  flow::Flow f("rtree-build");
  auto st = add_rtree_nodes(f, input, work_prefix, config);
  flow::FlowOptions options;
  options.keep_intermediates = config.keep_intermediates;
  const auto fr = f.run(dfs, cluster, options);

  RTreeMrResult result;
  result.tree = std::move(st->tree);
  result.phase1 = fr.node("rtree-phase1-sample")->job;
  result.phase2 = fr.node("rtree-phase2-build")->job;
  result.phase3_real_seconds = st->merge_real_seconds;
  result.partition_sizes = std::move(st->partition_sizes);
  result.boundaries = std::move(st->boundaries);
  result.bounds = st->bounds;
  return result;
}

}  // namespace gepeto::core
