#include "gepeto/poi.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/check.h"
#include "geo/distance.h"
#include "geo/time.h"

namespace gepeto::core {

namespace {

bool is_night(std::int64_t ts) {
  const int h = geo::seconds_of_day(ts) / 3600;
  return h >= 22 || h < 7;
}

bool is_office_hours(std::int64_t ts) {
  const int h = geo::seconds_of_day(ts) / 3600;
  return geo::day_of_week(ts) < 5 && h >= 9 && h < 17;
}

}  // namespace

ExtractedPois extract_pois(const geo::Trail& trail,
                           const DjClusterConfig& config) {
  ExtractedPois out;
  if (trail.empty()) return out;

  // DJ-Cluster over this single trail.
  geo::GeolocatedDataset one;
  one.add_trail(trail.front().user_id, trail);
  const auto pre = preprocess(one, config);
  const auto clusters = dj_cluster(pre, config);

  // Index the preprocessed traces by packed id to recover timestamps.
  std::unordered_map<std::uint64_t, const geo::MobilityTrace*> by_id;
  for (const auto& [uid, t] : pre)
    for (const auto& trace : t)
      by_id.emplace(pack_trace_id(trace.user_id, trace.timestamp), &trace);

  for (const auto& c : clusters.clusters) {
    PoiCandidate poi;
    poi.latitude = c.centroid_lat;
    poi.longitude = c.centroid_lon;
    poi.num_traces = c.members.size();
    for (const auto id : c.members) {
      const auto it = by_id.find(id);
      GEPETO_DCHECK(it != by_id.end());
      const std::int64_t ts = it->second->timestamp;
      ++poi.hour_histogram[static_cast<std::size_t>(
          geo::seconds_of_day(ts) / 3600)];
      if (is_night(ts)) ++poi.night_traces;
      if (is_office_hours(ts)) ++poi.office_traces;
    }
    out.pois.push_back(std::move(poi));
  }
  std::sort(out.pois.begin(), out.pois.end(),
            [](const PoiCandidate& a, const PoiCandidate& b) {
              return a.num_traces > b.num_traces;
            });

  // Home: the POI with the most night-time traces (ties: more traces).
  std::uint32_t best_night = 0;
  for (std::size_t i = 0; i < out.pois.size(); ++i) {
    if (out.pois[i].night_traces > best_night) {
      best_night = out.pois[i].night_traces;
      out.home_index = static_cast<int>(i);
    }
  }
  // Work: most weekday-office traces among the remaining POIs.
  std::uint32_t best_office = 0;
  for (std::size_t i = 0; i < out.pois.size(); ++i) {
    if (static_cast<int>(i) == out.home_index) continue;
    if (out.pois[i].office_traces > best_office) {
      best_office = out.pois[i].office_traces;
      out.work_index = static_cast<int>(i);
    }
  }
  return out;
}

PoiAttackScore score_poi_attack(const ExtractedPois& extracted,
                                const geo::UserProfile& truth,
                                double match_radius_m) {
  PoiAttackScore score;
  const auto& pois = extracted.pois;
  const auto& true_pois = truth.pois;

  // Greedy nearest matching between extracted and true POIs.
  std::vector<bool> true_used(true_pois.size(), false);
  std::size_t matched = 0;
  for (const auto& p : pois) {
    double best = std::numeric_limits<double>::max();
    std::size_t best_j = true_pois.size();
    for (std::size_t j = 0; j < true_pois.size(); ++j) {
      if (true_used[j]) continue;
      const double d = geo::haversine_meters(p.latitude, p.longitude,
                                             true_pois[j].latitude,
                                             true_pois[j].longitude);
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    if (best_j < true_pois.size() && best <= match_radius_m) {
      true_used[best_j] = true;
      ++matched;
    }
  }
  if (!pois.empty())
    score.precision = static_cast<double>(matched) /
                      static_cast<double>(pois.size());
  if (!true_pois.empty())
    score.recall = static_cast<double>(matched) /
                   static_cast<double>(true_pois.size());
  if (score.precision + score.recall > 0)
    score.f1 = 2 * score.precision * score.recall /
               (score.precision + score.recall);

  if (extracted.home_index >= 0 && !true_pois.empty()) {
    const auto& home = pois[static_cast<std::size_t>(extracted.home_index)];
    score.home_error_m = geo::haversine_meters(
        home.latitude, home.longitude, true_pois[0].latitude,
        true_pois[0].longitude);
    score.home_identified = score.home_error_m <= match_radius_m;
  }
  if (extracted.work_index >= 0 && true_pois.size() >= 2) {
    const auto& work = pois[static_cast<std::size_t>(extracted.work_index)];
    score.work_error_m = geo::haversine_meters(
        work.latitude, work.longitude, true_pois[1].latitude,
        true_pois[1].longitude);
    score.work_identified = score.work_error_m <= match_radius_m;
  }
  return score;
}

PoiAttackReport run_poi_attack(const geo::GeolocatedDataset& dataset,
                               const std::vector<geo::UserProfile>& truth,
                               const DjClusterConfig& config,
                               double match_radius_m) {
  PoiAttackReport report;
  std::size_t homes = 0, works = 0;
  for (const auto& profile : truth) {
    if (!dataset.has_user(profile.user_id)) {
      report.per_user.push_back({});
      continue;
    }
    const auto extracted = extract_pois(dataset.trail(profile.user_id), config);
    auto score = score_poi_attack(extracted, profile, match_radius_m);
    report.avg_precision += score.precision;
    report.avg_recall += score.recall;
    report.avg_f1 += score.f1;
    homes += score.home_identified;
    works += score.work_identified;
    report.per_user.push_back(std::move(score));
  }
  const auto n = static_cast<double>(truth.size());
  if (n > 0) {
    report.avg_precision /= n;
    report.avg_recall /= n;
    report.avg_f1 /= n;
    report.home_identification_rate = static_cast<double>(homes) / n;
    report.work_identification_rate = static_cast<double>(works) / n;
  }
  return report;
}

}  // namespace gepeto::core
