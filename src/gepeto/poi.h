// POI-extraction inference attack.
//
// "The clustering algorithms that we have implemented can be used primarily
// to extract the POIs of an individual from his trail of mobility traces,
// which correspond only to one possible type of inference attack"
// (Section VIII). This module runs DJ-Cluster on one user's trail and
// interprets the clusters as POIs, then applies time-of-day heuristics to
// label the home (most visited at night) and workplace (most visited during
// weekday office hours) — the classic home/work identification attack the
// paper cites (Golle & Partridge).
//
// Because the synthetic generator keeps ground truth, the attack can be
// *scored*: precision/recall of extracted POIs and home/work identification
// accuracy, which is how the privacy metrics of GEPETO quantify risk.
#pragma once

#include <array>
#include <vector>

#include "geo/generator.h"
#include "geo/trace.h"
#include "gepeto/djcluster.h"

namespace gepeto::core {

/// One extracted POI: a DJ-Cluster of a user's (preprocessed) traces plus
/// visit-time statistics.
struct PoiCandidate {
  double latitude = 0.0;
  double longitude = 0.0;
  std::size_t num_traces = 0;
  std::array<std::uint32_t, 24> hour_histogram{};
  std::uint32_t night_traces = 0;    ///< 22:00-07:00
  std::uint32_t office_traces = 0;   ///< weekday 09:00-17:00
};

struct ExtractedPois {
  std::vector<PoiCandidate> pois;  ///< ordered by num_traces descending
  int home_index = -1;             ///< -1 when nothing qualifies
  int work_index = -1;
};

/// Run the attack on one trail (preprocessing + DJ-Cluster + labeling).
ExtractedPois extract_pois(const geo::Trail& trail,
                           const DjClusterConfig& config);

/// Score one user's extraction against ground truth: an extracted POI
/// matches a true POI if within `match_radius_m` (greedy nearest matching,
/// each side used at most once).
struct PoiAttackScore {
  double precision = 0.0;  ///< matched extracted / extracted
  double recall = 0.0;     ///< matched true / true
  double f1 = 0.0;
  bool home_identified = false;  ///< labeled home within radius of true home
  bool work_identified = false;
  double home_error_m = -1.0;    ///< distance of labeled home to true home
  double work_error_m = -1.0;
};

PoiAttackScore score_poi_attack(const ExtractedPois& extracted,
                                const geo::UserProfile& truth,
                                double match_radius_m = 150.0);

/// Dataset-level attack: extract + score every user.
struct PoiAttackReport {
  double avg_precision = 0.0;
  double avg_recall = 0.0;
  double avg_f1 = 0.0;
  double home_identification_rate = 0.0;
  double work_identification_rate = 0.0;
  std::vector<PoiAttackScore> per_user;
};

PoiAttackReport run_poi_attack(const geo::GeolocatedDataset& dataset,
                               const std::vector<geo::UserProfile>& truth,
                               const DjClusterConfig& config,
                               double match_radius_m = 150.0);

}  // namespace gepeto::core
