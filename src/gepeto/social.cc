#include "gepeto/social.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <map>
#include <numbers>
#include <set>

#include "common/check.h"
#include "geo/distance.h"
#include "geo/geolife.h"
#include "mapreduce/engine.h"

namespace gepeto::core {

namespace {

constexpr double kMetersPerDegLat = 111320.0;
/// Reference latitude anchoring the longitude grid (city scale; exact
/// distance checks make the grid geometry non-critical).
constexpr double kReferenceLatitude = 40.0;
/// Envelope safety margin for the radius -> degrees conversion.
constexpr double kEnvelopeMargin = 1.1;

struct GridGeometry {
  double cell_deg_lat;
  double cell_deg_lon;
  double radius_deg_lat;
  double radius_deg_lon;

  explicit GridGeometry(double radius_m) {
    const double cos_ref =
        std::cos(kReferenceLatitude * std::numbers::pi / 180.0);
    cell_deg_lat = 2.0 * radius_m / kMetersPerDegLat;
    cell_deg_lon = 2.0 * radius_m / (kMetersPerDegLat * cos_ref);
    radius_deg_lat = kEnvelopeMargin * radius_m / kMetersPerDegLat;
    radius_deg_lon =
        kEnvelopeMargin * radius_m / (kMetersPerDegLat * cos_ref);
  }

  std::int64_t cx(double lon) const {
    return static_cast<std::int64_t>(std::floor(lon / cell_deg_lon));
  }
  std::int64_t cy(double lat) const {
    return static_cast<std::int64_t>(std::floor(lat / cell_deg_lat));
  }
};

/// Intermediate key: one spatial cell in one time bucket.
struct CellBucketKey {
  std::int64_t cx = 0;
  std::int64_t cy = 0;
  std::int64_t bucket = 0;

  friend auto operator<=>(const CellBucketKey&, const CellBucketKey&) = default;
  std::uint64_t partition_hash() const {
    std::uint64_t h = static_cast<std::uint64_t>(cx) * 0x9E3779B97F4A7C15ULL;
    h ^= static_cast<std::uint64_t>(cy) * 0xA24BAED4963EE407ULL;
    h ^= static_cast<std::uint64_t>(bucket) * 0x9FB21C651E98DF25ULL;
    return h;
  }
  std::uint64_t serialized_size() const { return 24; }
};

/// Intermediate value: one user's presence point; `home` marks the copy
/// emitted to the point's own cell (the others are envelope copies, so each
/// co-located pair is discoverable from at least one side's home cell).
struct UserPoint {
  std::int32_t user = 0;
  double lat = 0.0;
  double lon = 0.0;
  bool home = false;
  std::uint64_t serialized_size() const { return 21; }
};

/// Emit one presence point to its home cell and to every cell its contact
/// disk touches. `sink(key, home)` is called once per target cell.
template <typename Sink>
void emit_envelope(const GridGeometry& grid, const geo::MobilityTrace& t,
                   std::int64_t bucket, Sink&& sink) {
  const std::int64_t home_cx = grid.cx(t.longitude);
  const std::int64_t home_cy = grid.cy(t.latitude);
  const std::int64_t x0 = grid.cx(t.longitude - grid.radius_deg_lon);
  const std::int64_t x1 = grid.cx(t.longitude + grid.radius_deg_lon);
  const std::int64_t y0 = grid.cy(t.latitude - grid.radius_deg_lat);
  const std::int64_t y1 = grid.cy(t.latitude + grid.radius_deg_lat);
  for (std::int64_t x = x0; x <= x1; ++x)
    for (std::int64_t y = y0; y <= y1; ++y)
      sink(CellBucketKey{x, y, bucket}, x == home_cx && y == home_cy);
}

/// Co-located pairs within one (cell, bucket) group: (home point, any other
/// user's point) within the radius. Returns deduplicated user pairs.
std::set<std::pair<std::int32_t, std::int32_t>> pairs_in_group(
    std::span<const UserPoint> points, double radius_m) {
  std::set<std::pair<std::int32_t, std::int32_t>> pairs;
  for (const auto& p : points) {
    if (!p.home) continue;
    for (const auto& q : points) {
      if (q.user == p.user) continue;
      if (geo::haversine_meters(p.lat, p.lon, q.lat, q.lon) <= radius_m) {
        pairs.emplace(std::min(p.user, q.user), std::max(p.user, q.user));
      }
    }
  }
  return pairs;
}

/// Aggregate (pair, bucket) observations into edges: consecutive buckets
/// form one meeting; contact time = #buckets x bucket seconds.
std::vector<SocialEdge> aggregate_pairs(
    const std::set<std::tuple<std::int32_t, std::int32_t, std::int64_t>>&
        observations,
    const CoLocationConfig& config) {
  std::map<std::pair<std::int32_t, std::int32_t>, std::vector<std::int64_t>>
      buckets_of;
  for (const auto& [a, b, bucket] : observations)
    buckets_of[{a, b}].push_back(bucket);

  std::vector<SocialEdge> edges;
  for (auto& [pair, buckets] : buckets_of) {
    std::sort(buckets.begin(), buckets.end());
    SocialEdge e;
    e.a = pair.first;
    e.b = pair.second;
    e.contact_seconds =
        static_cast<double>(buckets.size()) * config.time_bucket_s;
    e.meetings = 1;
    for (std::size_t i = 1; i < buckets.size(); ++i)
      if (buckets[i] != buckets[i - 1] + 1) ++e.meetings;
    if (static_cast<int>(e.meetings) >= config.min_meetings &&
        e.contact_seconds >= config.min_contact_s) {
      edges.push_back(e);
    }
  }
  return edges;  // map order: sorted by (a, b)
}

// --- MapReduce job ----------------------------------------------------------

struct ColocationMapper {
  using OutKey = CellBucketKey;
  using OutValue = UserPoint;

  double radius_m;
  int time_bucket_s;

  // Dedupe per (user, bucket): dense trails emit each visited cell once.
  std::int32_t cur_user = -1;
  std::int64_t cur_bucket = -1;
  std::set<std::pair<std::int64_t, std::int64_t>> emitted_cells;

  void map(std::int64_t, std::string_view line,
           mr::MapContext<OutKey, OutValue>& ctx) {
    geo::MobilityTrace t;
    if (!geo::parse_dataset_line(line, t)) {
      ctx.increment("social.malformed_lines");
      return;
    }
    const GridGeometry grid(radius_m);
    const std::int64_t bucket = t.timestamp / time_bucket_s;
    if (t.user_id != cur_user || bucket != cur_bucket) {
      cur_user = t.user_id;
      cur_bucket = bucket;
      emitted_cells.clear();
    }
    const auto home_cell = std::make_pair(grid.cx(t.longitude),
                                          grid.cy(t.latitude));
    if (!emitted_cells.insert(home_cell).second) return;  // cell already sent
    emit_envelope(grid, t, bucket, [&](const CellBucketKey& key, bool home) {
      ctx.emit(key, UserPoint{t.user_id, t.latitude, t.longitude, home});
    });
  }
};

struct ColocationReducer {
  double radius_m;

  void reduce(const CellBucketKey& key, std::span<const UserPoint> values,
              mr::ReduceContext& ctx) {
    for (const auto& [a, b] : pairs_in_group(values, radius_m)) {
      ctx.write(std::to_string(a) + "," + std::to_string(b) + "," +
                std::to_string(key.bucket));
      ctx.increment("social.colocated_pairs");
    }
  }
};

}  // namespace

std::vector<SocialEdge> discover_social_links(
    const geo::GeolocatedDataset& dataset, const CoLocationConfig& config) {
  GEPETO_CHECK(config.radius_m > 0 && config.time_bucket_s > 0);
  const GridGeometry grid(config.radius_m);

  // Same plan as the MapReduce job, executed in memory: group presence
  // points by (cell, bucket) with per-(user, bucket) cell dedup.
  std::map<CellBucketKey, std::vector<UserPoint>> groups;
  for (const auto& [uid, trail] : dataset) {
    std::int64_t cur_bucket = -1;
    std::set<std::pair<std::int64_t, std::int64_t>> emitted_cells;
    for (const auto& t : trail) {
      const std::int64_t bucket = t.timestamp / config.time_bucket_s;
      if (bucket != cur_bucket) {
        cur_bucket = bucket;
        emitted_cells.clear();
      }
      const auto home_cell = std::make_pair(grid.cx(t.longitude),
                                            grid.cy(t.latitude));
      if (!emitted_cells.insert(home_cell).second) continue;
      emit_envelope(grid, t, bucket,
                    [&](const CellBucketKey& key, bool home) {
                      groups[key].push_back(
                          UserPoint{t.user_id, t.latitude, t.longitude, home});
                    });
    }
  }

  std::set<std::tuple<std::int32_t, std::int32_t, std::int64_t>> observations;
  for (const auto& [key, points] : groups) {
    for (const auto& [a, b] :
         pairs_in_group(std::span<const UserPoint>(points), config.radius_m))
      observations.emplace(a, b, key.bucket);
  }
  return aggregate_pairs(observations, config);
}

SocialAttackScore score_social_attack(
    const std::vector<SocialEdge>& edges,
    const std::vector<std::pair<std::int32_t, std::int32_t>>& truth) {
  SocialAttackScore score;
  score.predicted = edges.size();
  score.truth = truth.size();
  std::set<std::pair<std::int32_t, std::int32_t>> truth_set(truth.begin(),
                                                            truth.end());
  for (const auto& e : edges)
    score.correct += truth_set.count({e.a, e.b});
  if (score.predicted > 0)
    score.precision = static_cast<double>(score.correct) /
                      static_cast<double>(score.predicted);
  if (score.truth > 0)
    score.recall = static_cast<double>(score.correct) /
                   static_cast<double>(score.truth);
  if (score.precision + score.recall > 0)
    score.f1 = 2 * score.precision * score.recall /
               (score.precision + score.recall);
  return score;
}

SocialMrResult run_colocation_job(mr::Dfs& dfs,
                                  const mr::ClusterConfig& cluster,
                                  const std::string& input,
                                  const std::string& output,
                                  const CoLocationConfig& config) {
  GEPETO_CHECK(config.radius_m > 0 && config.time_bucket_s > 0);
  SocialMrResult result;
  mr::JobConfig job;
  job.name = "social-colocation";
  job.input = input;
  job.output = output;
  job.num_reducers = std::max(1, cluster.total_reduce_slots());
  const double radius = config.radius_m;
  const int bucket_s = config.time_bucket_s;
  result.job = mr::run_mapreduce_job(
      dfs, cluster, job,
      [radius, bucket_s] {
        return ColocationMapper{radius, bucket_s, -1, -1, {}};
      },
      [radius] { return ColocationReducer{radius}; });

  // Driver: merge per-bucket pair observations into social edges.
  std::set<std::tuple<std::int32_t, std::int32_t, std::int64_t>> observations;
  for (const auto& part : dfs.list(output + "/")) {
    const std::string_view data = dfs.read(part);
    std::size_t start = 0;
    while (start < data.size()) {
      std::size_t end = data.find('\n', start);
      if (end == std::string_view::npos) end = data.size();
      const std::string_view line = data.substr(start, end - start);
      if (!line.empty()) {
        std::int32_t a = 0, b = 0;
        std::int64_t bucket = 0;
        const char* p = line.data();
        const char* e = line.data() + line.size();
        auto r1 = std::from_chars(p, e, a);
        GEPETO_CHECK(r1.ec == std::errc() && r1.ptr != e && *r1.ptr == ',');
        auto r2 = std::from_chars(r1.ptr + 1, e, b);
        GEPETO_CHECK(r2.ec == std::errc() && r2.ptr != e && *r2.ptr == ',');
        auto r3 = std::from_chars(r2.ptr + 1, e, bucket);
        GEPETO_CHECK(r3.ec == std::errc() && r3.ptr == e);
        observations.emplace(a, b, bucket);
      }
      start = end + 1;
    }
  }
  result.edges = aggregate_pairs(observations, config);
  return result;
}

}  // namespace gepeto::core
