// DJ-Cluster — Density-Joinable Clustering (paper Section VII, Fig. 5,
// Table IV, Algorithms 4-5).
//
// Three phases, each expressible in MapReduce:
//  1. *Preprocessing*: two pipelined map-only jobs. The first keeps only
//     stationary traces (speed below a threshold epsilon); the second
//     removes redundant consecutive traces (almost the same coordinate,
//     different timestamps), keeping the first of each redundant run.
//  2. *Neighborhood identification* (map): for each trace, the set of traces
//     within distance r, computed against an R-Tree shipped through the
//     distributed cache; traces with fewer than MinPts neighbors are noise.
//  3. *Merging* (single reducer): all neighborhoods sharing at least one
//     trace are joined into one cluster; every trace ends up in exactly one
//     cluster or marked as noise, clusters are non-overlapping and contain
//     at least MinPts traces.
//
// Speed of a trace: "the distance traveled between the previous and the next
// traces divided by the corresponding time difference" — a symmetric
// difference; the first/last trace of a trail fall back to the one-sided
// difference, and an isolated trace has speed 0 (kept). In the map-only
// realization each mapper only sees its own chunk, so the handful of traces
// at chunk boundaries use one-sided speeds — identical to the sequential
// reference when a file is a single chunk, and off by at most 2 traces per
// chunk otherwise (quantified in the tests).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/trace.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"
#include "workflow/flow.h"

namespace gepeto::mr {
class Dfs;
}

namespace gepeto::core {

struct DjClusterConfig {
  /// Preprocessing speed threshold epsilon (m/s). The paper uses a value
  /// equivalent to 7.2 km/h = 2 m/s.
  double speed_threshold_ms = 2.0;
  /// Two consecutive traces closer than this are redundant (meters).
  double duplicate_radius_m = 1.0;
  /// Neighborhood radius r (meters).
  double radius_m = 100.0;
  /// Minimum neighborhood size MinPts (the point itself counts).
  int min_pts = 8;
  /// Failure policy applied to all three MapReduce jobs of the pipeline
  /// (injected attempt failures, retries, skip mode — see mr::FailurePolicy).
  mr::FailurePolicy failures;
  /// Deterministic chaos (see mr::FaultPlan) experienced by the *filter*
  /// job only — the pipeline's widest job, and the only one whose input is
  /// the raw dataset: poison records applied there drop the same logical
  /// traces for every chunking, so downstream jobs see consistent data.
  mr::FaultPlan fault_plan;
  /// Debugging: pin the flow's intermediate datasets (the filtered traces,
  /// the R-Tree entries cache) instead of garbage-collecting them once their
  /// consumers finished.
  bool keep_intermediates = false;
};

/// A stable identifier for a trace: (user id, timestamp) packed into 64
/// bits. Timestamps are strictly increasing per user after preprocessing, so
/// this is unique within a dataset.
std::uint64_t pack_trace_id(std::int32_t user_id, std::int64_t timestamp);
void unpack_trace_id(std::uint64_t id, std::int32_t& user_id,
                     std::int64_t& timestamp);

struct DjCluster {
  std::vector<std::uint64_t> members;  ///< packed trace ids, sorted
  double centroid_lat = 0.0;
  double centroid_lon = 0.0;
};

struct DjClusterResult {
  std::vector<DjCluster> clusters;     ///< sorted by smallest member id
  std::uint64_t noise = 0;             ///< traces assigned to no cluster
  std::uint64_t clustered = 0;
};

/// Read-side summary of one DJ-Cluster: everything the serving layer needs
/// to answer "which cluster/POI is this point in" without the member list.
struct ClusterSummary {
  std::uint64_t cluster_id = 0;  ///< index in DjClusterResult::clusters
  double centroid_lat = 0.0;
  double centroid_lon = 0.0;
  std::uint32_t size = 0;        ///< member traces
  double radius_m = 0.0;         ///< max haversine centroid->member distance
};

/// Resolve every cluster's members against the preprocessed dataset they
/// were clustered from and reduce each to a ClusterSummary (centroid, size,
/// containment radius). Members reference traces by packed (user,
/// timestamp) id, so `preprocessed` must be the dataset the clustering ran
/// on; a dangling member id throws CheckFailure.
std::vector<ClusterSummary> summarize_clusters(
    const DjClusterResult& result, const geo::GeolocatedDataset& preprocessed);

// --- sequential reference ----------------------------------------------------

/// Phase 1a: keep stationary traces of one trail.
geo::Trail filter_moving(const geo::Trail& trail, double speed_threshold_ms);

/// Phase 1b: drop redundant consecutive traces of one trail.
geo::Trail remove_duplicates(const geo::Trail& trail,
                             double duplicate_radius_m);

/// Full preprocessing over a dataset.
geo::GeolocatedDataset preprocess(const geo::GeolocatedDataset& dataset,
                                  const DjClusterConfig& config);

/// Phases 2+3 over an already-preprocessed dataset.
DjClusterResult dj_cluster(const geo::GeolocatedDataset& preprocessed,
                           const DjClusterConfig& config);

// --- MapReduce realization -----------------------------------------------------

struct DjPreprocessStats {
  mr::JobResult filter_job;
  mr::JobResult dedup_job;
  std::uint64_t input_traces = 0;
  std::uint64_t after_filter = 0;
  std::uint64_t after_dedup = 0;
};

/// Append the two preprocessing nodes (Fig. 5) to a flow:
/// input -> `work_prefix`/filtered -> `work_prefix`/preprocessed. The
/// filtered dataset is a GC-able intermediate; the preprocessed dataset is
/// kept (the clustering job and the R-Tree build read it downstream).
void add_preprocess_nodes(flow::Flow& f, const std::string& input,
                          const std::string& work_prefix,
                          const DjClusterConfig& config);

/// Append the full DJ-Cluster pipeline to a flow: preprocessing, the driver
/// node serializing the R-Tree entries into the distributed cache, and the
/// neighborhood (map) + merging (single reduce) job writing
/// `work_prefix`/clusters.
void add_djcluster_nodes(flow::Flow& f, const std::string& input,
                         const std::string& work_prefix,
                         const DjClusterConfig& config);

/// Parse the cluster/noise lines under `work_prefix`/clusters back into a
/// DjClusterResult.
DjClusterResult parse_djcluster_output(const mr::Dfs& dfs,
                                       const std::string& work_prefix);

/// Phase 1 as two pipelined map-only jobs (Fig. 5), run as a JobFlow:
/// input -> `work_prefix`/filtered -> `work_prefix`/preprocessed. The
/// filtered intermediate is garbage-collected once the dedup job consumed it
/// (unless `config.keep_intermediates`).
DjPreprocessStats run_preprocess_jobs(mr::Dfs& dfs,
                                      const mr::ClusterConfig& cluster,
                                      const std::string& input,
                                      const std::string& work_prefix,
                                      const DjClusterConfig& config);

struct DjMapReduceResult {
  DjClusterResult clusters;
  DjPreprocessStats preprocess;
  mr::JobResult cluster_job;  ///< the neighborhood+merge job
};

/// The full pipeline as one JobFlow: preprocessing jobs, R-Tree distribution
/// via the distributed cache, then the neighborhood (map) + merging (single
/// reduce) job. Cluster lines are written to `work_prefix`/clusters; the
/// filtered and entries intermediates are garbage-collected.
DjMapReduceResult run_djcluster_jobs(mr::Dfs& dfs,
                                     const mr::ClusterConfig& cluster,
                                     const std::string& input,
                                     const std::string& work_prefix,
                                     const DjClusterConfig& config);

}  // namespace gepeto::core
