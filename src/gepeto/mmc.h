// Mobility Markov Chains (MMC) — the paper's announced extension
// (Section VIII): "a MMC represents in a compact way the mobility behavior
// of an individual and can be used to predict his future locations or even
// to perform de-anonymization attacks".
//
// States are the POIs extracted by DJ-Cluster; transition probabilities are
// learned from the sequence of POI visits in the trail. The de-anonymization
// (linking) attack matches each anonymized MMC against a gallery of known
// MMCs by a mobility-fingerprint distance, reproducing the "show me how you
// move and I will tell you who you are" attack of Gambs et al. that this
// paper cites as future work.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/trace.h"
#include "gepeto/djcluster.h"
#include "gepeto/poi.h"

namespace gepeto::core {

struct MobilityMarkovChain {
  std::vector<PoiCandidate> states;              ///< extracted POIs
  std::vector<std::vector<double>> transitions;  ///< row-stochastic
  std::vector<double> stationary;                ///< stationary distribution
};

struct MmcConfig {
  DjClusterConfig clustering;
  /// A trace belongs to a state if within this distance of its centroid.
  double attach_radius_m = 150.0;
  /// Laplace smoothing added to every transition count.
  double smoothing = 0.05;
};

/// Learn the MMC of one user from their trail.
MobilityMarkovChain learn_mmc(const geo::Trail& trail, const MmcConfig& config);

/// Sequence of state visits (consecutive duplicates collapsed) — the data
/// the transition counts come from. Exposed for testing and prediction
/// evaluation.
std::vector<int> visit_sequence(const geo::Trail& trail,
                                const std::vector<PoiCandidate>& states,
                                double attach_radius_m);

/// Most probable next state from `state` (-1 if the MMC is empty).
int predict_next(const MobilityMarkovChain& mmc, int state);

/// Next-place prediction accuracy: learn on the first `train_fraction` of
/// the trail's visits, test on the rest. Returns -1 when fewer than 3 test
/// transitions exist.
double prediction_accuracy(const geo::Trail& trail, const MmcConfig& config,
                           double train_fraction = 0.7);

/// Distance between two mobility fingerprints: stationary-weighted earth-
/// mover-style cost of matching the states of `a` onto `b`, symmetrized.
/// Small when the two MMCs describe the same person's mobility.
double mmc_distance(const MobilityMarkovChain& a,
                    const MobilityMarkovChain& b);

struct DeanonymizationResult {
  std::vector<int> predicted;  ///< index into the gallery for each probe
  std::size_t correct = 0;
  double accuracy = 0.0;
};

/// Link each anonymized probe MMC to the closest gallery MMC. `truth[i]`
/// is the gallery index that probe i actually belongs to.
///
/// Tie-break contract: when several gallery MMCs are exactly equidistant
/// from a probe, the *lowest gallery index* wins (strict-< argmin). This is
/// the same contract as the SIMD argmin kernels (geo/kernels.h) and the
/// fingerprint linking attack (attacks/fingerprint.h), so attack success
/// rates are bit-reproducible across GEPETO_KERNEL backends and chunkings.
DeanonymizationResult deanonymization_attack(
    const std::vector<MobilityMarkovChain>& gallery,
    const std::vector<MobilityMarkovChain>& probes,
    const std::vector<int>& truth);

}  // namespace gepeto::core
