// MapReduce construction of an R-Tree (paper Section VII-C, Fig. 6,
// Algorithms 6-9).
//
// Three phases:
//  1. *Partitioning function* — mappers sample a predefined number of
//     objects per chunk and emit their space-filling-curve scalars
//     (Algorithm 6); a single reducer sorts the sample and derives the
//     partition boundary points (Algorithm 7). Both curves of the paper are
//     supported: Z-order and Hilbert.
//  2. *Per-partition build* — mappers assign every object to a partition by
//     its scalar (Algorithm 8); reducer p bulk-loads (STR) the R-Tree of
//     partition p and emits it, serialized (Algorithm 9).
//  3. *Merge* — the small R-Trees are merged into one tree indexing the
//     whole dataset, "executed sequentially by a single node due to its low
//     computational complexity".
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "index/rtree.h"
#include "index/sfc.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"
#include "workflow/flow.h"

namespace gepeto::mr {
class Dfs;
}

namespace gepeto::core {

struct RTreeMrConfig {
  index::CurveKind curve = index::CurveKind::kHilbert;
  int sfc_order = 12;          ///< curve grid is 2^order x 2^order
  int num_partitions = 8;      ///< also the phase-2 reducer count
  int samples_per_chunk = 256; ///< phase-1 per-mapper sample size
  int rtree_max_entries = 16;
  std::uint64_t seed = 42;
  /// Failure policy for the two MapReduce phases (retries, skip mode).
  mr::FailurePolicy failures;
  /// Deterministic chaos (see mr::FaultPlan) applied to both MapReduce
  /// phases. Both read the same input lines, so content-addressed poison
  /// records drop the same traces from the sample and the build.
  mr::FaultPlan fault_plan;
  /// Debugging: pin the flow's intermediate datasets (partition points,
  /// boundaries cache, serialized small trees) instead of garbage-collecting
  /// them once consumed.
  bool keep_intermediates = false;
};

struct RTreeMrResult {
  index::RTree tree{16};
  mr::JobResult phase1;            ///< sampling / partition-point job
  mr::JobResult phase2;            ///< partition + per-partition build job
  double phase3_real_seconds = 0;  ///< sequential merge
  std::vector<std::uint64_t> partition_sizes;
  std::vector<std::uint64_t> boundaries;  ///< scalar partition points
  index::Rect bounds;              ///< dataset bounds used by the curve
};

/// Driver-side state shared by the R-Tree flow nodes: the curve parameters
/// and the merged tree travel through memory, not the DFS. Filled in as the
/// flow runs; complete once the flow returned.
struct RTreeFlowState {
  index::Rect bounds;
  std::optional<index::ScalarMapper> curve;  ///< set by the bounds node
  std::vector<std::uint64_t> boundaries;
  std::vector<std::uint64_t> partition_sizes;
  index::RTree tree{16};
  double merge_real_seconds = 0.0;
};

/// Append the three-phase R-Tree build (Fig. 6) to a flow: a driver bounds
/// scan, the sampling job, the boundary consolidation, the per-partition
/// build job, and the sequential merge. Every dataset under `work_prefix` is
/// a GC-able intermediate. Returns the shared state the nodes fill.
std::shared_ptr<RTreeFlowState> add_rtree_nodes(flow::Flow& f,
                                                const std::string& input,
                                                const std::string& work_prefix,
                                                const RTreeMrConfig& config);

/// Build an R-Tree over every trace under `input` (dataset lines), as a
/// JobFlow. Intermediate files live under `work_prefix` and are
/// garbage-collected as phases consume them (unless
/// `config.keep_intermediates`).
RTreeMrResult build_rtree_mapreduce(mr::Dfs& dfs,
                                    const mr::ClusterConfig& cluster,
                                    const std::string& input,
                                    const std::string& work_prefix,
                                    const RTreeMrConfig& config);

/// Partition id of a scalar given sorted boundary points: the number of
/// boundaries <= scalar (so boundaries.size() + 1 partitions).
std::size_t partition_of_scalar(std::uint64_t scalar,
                                const std::vector<std::uint64_t>& boundaries);

}  // namespace gepeto::core
