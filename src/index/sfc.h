// Space-filling curves (paper Section VII-C): map 2D points to one
// dimension while preserving locality, used as the partitioning function of
// the MapReduce R-Tree construction. Both curves evaluated in the paper are
// implemented: Z-order (Morton) and Hilbert.
#pragma once

#include <cstdint>
#include <string_view>

#include "index/bbox.h"

namespace gepeto::index {

/// Interleave the bits of x and y (x in even positions): the Z-order curve.
/// Inputs use the low `order` bits (order <= 32).
std::uint64_t zorder_encode(std::uint32_t x, std::uint32_t y, int order = 32);

/// Inverse of zorder_encode.
void zorder_decode(std::uint64_t z, std::uint32_t& x, std::uint32_t& y,
                   int order = 32);

/// Distance along the Hilbert curve of order `order` (grid 2^order x
/// 2^order) for cell (x, y). Classic rotate-and-flip formulation.
std::uint64_t hilbert_encode(std::uint32_t x, std::uint32_t y, int order = 16);

/// Inverse of hilbert_encode.
void hilbert_decode(std::uint64_t d, std::uint32_t& x, std::uint32_t& y,
                    int order = 16);

enum class CurveKind { kZOrder, kHilbert };

std::string_view curve_name(CurveKind kind);

/// Maps (lat, lon) within a fixed bounding box to a scalar curve position.
/// The box and curve are fixed at construction so every mapper/reducer in a
/// job assigns identical scalars.
class ScalarMapper {
 public:
  ScalarMapper(CurveKind kind, const Rect& bounds, int order = 16);

  /// Scalar position of a point (clamped into the bounds). Non-finite
  /// coordinates are deterministic, not UB: +/-inf clamp to the edges and a
  /// NaN coordinate lands in cell 0 of its axis.
  std::uint64_t scalar(double lat, double lon) const;

  CurveKind kind() const { return kind_; }
  int order() const { return order_; }
  const Rect& bounds() const { return bounds_; }

 private:
  std::uint32_t grid(double v, double lo, double hi) const;

  CurveKind kind_;
  Rect bounds_;
  int order_;
  std::uint32_t cells_;  ///< 2^order
};

}  // namespace gepeto::index
