#include "index/sfc.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gepeto::index {

namespace {

/// Spread the low 32 bits of v into the even bit positions of a 64-bit word.
std::uint64_t spread_bits(std::uint32_t v) {
  std::uint64_t x = v;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

std::uint32_t compact_bits(std::uint64_t x) {
  x &= 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x >> 4)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x >> 8)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x >> 16)) & 0x00000000FFFFFFFFULL;
  return static_cast<std::uint32_t>(x);
}

void hilbert_rotate(std::uint32_t n, std::uint32_t& x, std::uint32_t& y,
                    std::uint32_t rx, std::uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      x = n - 1 - x;
      y = n - 1 - y;
    }
    std::swap(x, y);
  }
}

}  // namespace

std::uint64_t zorder_encode(std::uint32_t x, std::uint32_t y, int order) {
  GEPETO_CHECK(order >= 1 && order <= 32);
  if (order < 32) {
    const std::uint32_t mask = (order == 32) ? ~0u : ((1u << order) - 1u);
    x &= mask;
    y &= mask;
  }
  return spread_bits(x) | (spread_bits(y) << 1);
}

void zorder_decode(std::uint64_t z, std::uint32_t& x, std::uint32_t& y,
                   int order) {
  GEPETO_CHECK(order >= 1 && order <= 32);
  x = compact_bits(z);
  y = compact_bits(z >> 1);
}

std::uint64_t hilbert_encode(std::uint32_t x, std::uint32_t y, int order) {
  GEPETO_CHECK(order >= 1 && order <= 31);
  const std::uint32_t n = 1u << order;
  GEPETO_CHECK_MSG(x < n && y < n, "coordinates exceed the curve order");
  std::uint64_t d = 0;
  for (std::uint32_t s = n / 2; s > 0; s /= 2) {
    const std::uint32_t rx = (x & s) > 0 ? 1 : 0;
    const std::uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<std::uint64_t>(s) * s * ((3 * rx) ^ ry);
    hilbert_rotate(n, x, y, rx, ry);
  }
  return d;
}

void hilbert_decode(std::uint64_t d, std::uint32_t& x, std::uint32_t& y,
                    int order) {
  GEPETO_CHECK(order >= 1 && order <= 31);
  const std::uint32_t n = 1u << order;
  std::uint32_t rx, ry;
  std::uint64_t t = d;
  x = y = 0;
  for (std::uint32_t s = 1; s < n; s *= 2) {
    rx = 1 & static_cast<std::uint32_t>(t / 2);
    ry = 1 & static_cast<std::uint32_t>(t ^ rx);
    hilbert_rotate(s, x, y, rx, ry);
    x += s * rx;
    y += s * ry;
    t /= 4;
  }
}

std::string_view curve_name(CurveKind kind) {
  switch (kind) {
    case CurveKind::kZOrder: return "Z-order";
    case CurveKind::kHilbert: return "Hilbert";
  }
  return "?";
}

ScalarMapper::ScalarMapper(CurveKind kind, const Rect& bounds, int order)
    : kind_(kind), bounds_(bounds), order_(order),
      cells_(1u << order) {
  GEPETO_CHECK(order >= 1 && order <= 16);
  GEPETO_CHECK_MSG(bounds.valid(), "invalid ScalarMapper bounds");
}

std::uint32_t ScalarMapper::grid(double v, double lo, double hi) const {
  if (hi <= lo) return 0;   // degenerate axis: everything in cell 0
  if (std::isnan(v)) return 0;  // clamp() passes NaN through; the float ->
                                // int cast below would then be UB
  const double f = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
  const auto cell =
      static_cast<std::uint32_t>(f * static_cast<double>(cells_));
  return std::min(cell, cells_ - 1);
}

std::uint64_t ScalarMapper::scalar(double lat, double lon) const {
  const std::uint32_t x = grid(lon, bounds_.min_lon, bounds_.max_lon);
  const std::uint32_t y = grid(lat, bounds_.min_lat, bounds_.max_lat);
  switch (kind_) {
    case CurveKind::kZOrder: return zorder_encode(x, y, order_);
    case CurveKind::kHilbert: return hilbert_encode(x, y, order_);
  }
  GEPETO_CHECK_MSG(false, "unknown CurveKind");
}

}  // namespace gepeto::index
