// Axis-aligned bounding rectangles over (latitude, longitude), the building
// block of the R-Tree (paper Section VII-C: "R-Trees group datapoints ...
// and represent them through their minimum bounding rectangle").
#pragma once

#include <algorithm>
#include <limits>

namespace gepeto::index {

struct Rect {
  double min_lat = std::numeric_limits<double>::max();
  double min_lon = std::numeric_limits<double>::max();
  double max_lat = std::numeric_limits<double>::lowest();
  double max_lon = std::numeric_limits<double>::lowest();

  static Rect point(double lat, double lon) { return {lat, lon, lat, lon}; }

  static Rect of(double min_lat, double min_lon, double max_lat,
                 double max_lon) {
    return {min_lat, min_lon, max_lat, max_lon};
  }

  bool valid() const { return min_lat <= max_lat && min_lon <= max_lon; }

  void expand(const Rect& o) {
    min_lat = std::min(min_lat, o.min_lat);
    min_lon = std::min(min_lon, o.min_lon);
    max_lat = std::max(max_lat, o.max_lat);
    max_lon = std::max(max_lon, o.max_lon);
  }

  Rect expanded(const Rect& o) const {
    Rect r = *this;
    r.expand(o);
    return r;
  }

  bool intersects(const Rect& o) const {
    return min_lat <= o.max_lat && o.min_lat <= max_lat &&
           min_lon <= o.max_lon && o.min_lon <= max_lon;
  }

  bool contains(double lat, double lon) const {
    return lat >= min_lat && lat <= max_lat && lon >= min_lon &&
           lon <= max_lon;
  }

  bool contains(const Rect& o) const {
    return o.min_lat >= min_lat && o.max_lat <= max_lat &&
           o.min_lon >= min_lon && o.max_lon <= max_lon;
  }

  double area() const {
    return valid() ? (max_lat - min_lat) * (max_lon - min_lon) : 0.0;
  }

  /// Area increase needed to also cover `o` (Guttman's insertion heuristic).
  double enlargement(const Rect& o) const { return expanded(o).area() - area(); }

  double center_lat() const { return 0.5 * (min_lat + max_lat); }
  double center_lon() const { return 0.5 * (min_lon + max_lon); }

  /// Squared distance (degree space) from a point to this rectangle; zero if
  /// inside. Used by best-first kNN.
  double min_dist2(double lat, double lon) const {
    const double dlat =
        lat < min_lat ? min_lat - lat : (lat > max_lat ? lat - max_lat : 0.0);
    const double dlon =
        lon < min_lon ? min_lon - lon : (lon > max_lon ? lon - max_lon : 0.0);
    return dlat * dlat + dlon * dlon;
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

}  // namespace gepeto::index
