#include "index/rtree.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <queue>
#include <string>

#include "common/check.h"
#include "geo/distance.h"
#include "geo/kernels.h"

namespace gepeto::index {

RTree::RTree(int max_entries)
    : max_entries_(max_entries),
      min_entries_(std::max(2, max_entries * 2 / 5)) {
  GEPETO_CHECK(max_entries_ >= 4);
}

std::int32_t RTree::new_node(bool leaf) {
  nodes_.push_back(Node{});
  nodes_.back().leaf = leaf;
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

Rect RTree::entry_box(const Node& node, std::size_t i) const {
  if (node.leaf) return Rect::point(node.points[i].lat, node.points[i].lon);
  return nodes_[static_cast<std::size_t>(node.children[i])].box;
}

void RTree::recompute_box(std::int32_t n) {
  Node& node = nodes_[static_cast<std::size_t>(n)];
  Rect box;
  const std::size_t count =
      node.leaf ? node.points.size() : node.children.size();
  for (std::size_t i = 0; i < count; ++i) box.expand(entry_box(node, i));
  node.box = box;
}

namespace {
/// Quadratic-split seed selection: the pair whose combined rectangle wastes
/// the most area (Guttman's PickSeeds).
std::pair<std::size_t, std::size_t> pick_seeds(
    const std::vector<Rect>& boxes) {
  std::size_t best_a = 0, best_b = 1;
  double worst = -1.0;
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    for (std::size_t j = i + 1; j < boxes.size(); ++j) {
      const double dead =
          boxes[i].expanded(boxes[j]).area() - boxes[i].area() -
          boxes[j].area();
      if (dead > worst) {
        worst = dead;
        best_a = i;
        best_b = j;
      }
    }
  }
  return {best_a, best_b};
}
}  // namespace

std::int32_t RTree::split(std::int32_t n) {
  const bool leaf = nodes_[static_cast<std::size_t>(n)].leaf;
  const std::int32_t sib = new_node(leaf);
  Node& node = nodes_[static_cast<std::size_t>(n)];   // revalidate after push
  Node& sibling = nodes_[static_cast<std::size_t>(sib)];

  const std::size_t count =
      leaf ? node.points.size() : node.children.size();
  std::vector<Rect> boxes(count);
  for (std::size_t i = 0; i < count; ++i) boxes[i] = entry_box(node, i);

  const auto [seed_a, seed_b] = pick_seeds(boxes);

  std::vector<bool> to_sibling(count, false);
  std::vector<bool> placed(count, false);
  placed[seed_a] = placed[seed_b] = true;
  to_sibling[seed_b] = true;
  Rect box_a = boxes[seed_a];
  Rect box_b = boxes[seed_b];
  std::size_t count_a = 1, count_b = 1;
  std::size_t remaining = count - 2;

  while (remaining > 0) {
    // If one group must take all the rest to reach the minimum, do so.
    if (count_a + remaining == static_cast<std::size_t>(min_entries_)) {
      for (std::size_t i = 0; i < count; ++i)
        if (!placed[i]) {
          placed[i] = true;
          box_a.expand(boxes[i]);
          ++count_a;
        }
      remaining = 0;
      break;
    }
    if (count_b + remaining == static_cast<std::size_t>(min_entries_)) {
      for (std::size_t i = 0; i < count; ++i)
        if (!placed[i]) {
          placed[i] = true;
          to_sibling[i] = true;
          box_b.expand(boxes[i]);
          ++count_b;
        }
      remaining = 0;
      break;
    }
    // PickNext: the entry with the greatest preference for one group.
    std::size_t best = count;
    double best_diff = -1.0;
    for (std::size_t i = 0; i < count; ++i) {
      if (placed[i]) continue;
      const double diff = std::fabs(box_a.enlargement(boxes[i]) -
                                    box_b.enlargement(boxes[i]));
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
      }
    }
    const double grow_a = box_a.enlargement(boxes[best]);
    const double grow_b = box_b.enlargement(boxes[best]);
    bool pick_b = grow_b < grow_a;
    if (grow_a == grow_b) {
      pick_b = box_b.area() < box_a.area();
      if (box_a.area() == box_b.area()) pick_b = count_b < count_a;
    }
    placed[best] = true;
    if (pick_b) {
      to_sibling[best] = true;
      box_b.expand(boxes[best]);
      ++count_b;
    } else {
      box_a.expand(boxes[best]);
      ++count_a;
    }
    --remaining;
  }

  // Move the sibling's share out of `node`.
  if (leaf) {
    std::vector<RTreeEntry> keep;
    keep.reserve(count_a);
    for (std::size_t i = 0; i < count; ++i) {
      if (to_sibling[i])
        sibling.points.push_back(node.points[i]);
      else
        keep.push_back(node.points[i]);
    }
    node.points = std::move(keep);
  } else {
    std::vector<std::int32_t> keep;
    keep.reserve(count_a);
    for (std::size_t i = 0; i < count; ++i) {
      if (to_sibling[i])
        sibling.children.push_back(node.children[i]);
      else
        keep.push_back(node.children[i]);
    }
    node.children = std::move(keep);
  }
  recompute_box(n);
  recompute_box(sib);
  return sib;
}

void RTree::insert(double lat, double lon, std::uint64_t id) {
  const Rect r = Rect::point(lat, lon);
  if (root_ < 0) {
    root_ = new_node(true);
    nodes_[static_cast<std::size_t>(root_)].points.push_back({lat, lon, id});
    nodes_[static_cast<std::size_t>(root_)].box = r;
    size_ = 1;
    return;
  }

  // Descend to a leaf, tracking the path (ChooseLeaf).
  std::vector<std::int32_t> path;
  std::int32_t cur = root_;
  for (;;) {
    path.push_back(cur);
    Node& node = nodes_[static_cast<std::size_t>(cur)];
    node.box.expand(r);
    if (node.leaf) break;
    std::size_t best = 0;
    double best_growth = std::numeric_limits<double>::max();
    double best_area = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      const Rect& cb =
          nodes_[static_cast<std::size_t>(node.children[i])].box;
      const double growth = cb.enlargement(r);
      const double area = cb.area();
      if (growth < best_growth ||
          (growth == best_growth && area < best_area)) {
        best_growth = growth;
        best_area = area;
        best = i;
      }
    }
    cur = node.children[best];
  }

  nodes_[static_cast<std::size_t>(cur)].points.push_back({lat, lon, id});
  ++size_;

  // Handle overflows bottom-up.
  for (std::size_t depth = path.size(); depth-- > 0;) {
    const std::int32_t n = path[depth];
    Node& node = nodes_[static_cast<std::size_t>(n)];
    const std::size_t count =
        node.leaf ? node.points.size() : node.children.size();
    if (count <= static_cast<std::size_t>(max_entries_)) break;
    const std::int32_t sib = split(n);
    if (depth == 0) {
      const std::int32_t new_root = new_node(false);
      Node& rn = nodes_[static_cast<std::size_t>(new_root)];
      rn.children = {n, sib};
      recompute_box(new_root);
      root_ = new_root;
    } else {
      const std::int32_t parent = path[depth - 1];
      nodes_[static_cast<std::size_t>(parent)].children.push_back(sib);
      // Parent box already covers both halves; count is checked next loop.
    }
  }
}

void RTree::bulk_load_str(std::span<const RTreeEntry> entries) {
  GEPETO_CHECK_MSG(empty(), "bulk_load_str requires an empty tree");
  if (entries.empty()) return;

  // Build the leaf level: sort by longitude into vertical slabs, then by
  // latitude within each slab, packing max_entries_ per leaf (STR).
  std::vector<RTreeEntry> pts(entries.begin(), entries.end());
  const std::size_t M = static_cast<std::size_t>(max_entries_);
  const std::size_t num_leaves = (pts.size() + M - 1) / M;
  const std::size_t slabs = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const std::size_t per_slab = slabs * M;

  std::sort(pts.begin(), pts.end(), [](const auto& a, const auto& b) {
    if (a.lon != b.lon) return a.lon < b.lon;
    if (a.lat != b.lat) return a.lat < b.lat;
    return a.id < b.id;
  });

  std::vector<std::int32_t> level;
  for (std::size_t s = 0; s * per_slab < pts.size(); ++s) {
    const std::size_t lo = s * per_slab;
    const std::size_t hi = std::min(pts.size(), lo + per_slab);
    std::sort(pts.begin() + static_cast<std::ptrdiff_t>(lo),
              pts.begin() + static_cast<std::ptrdiff_t>(hi),
              [](const auto& a, const auto& b) {
                if (a.lat != b.lat) return a.lat < b.lat;
                if (a.lon != b.lon) return a.lon < b.lon;
                return a.id < b.id;
              });
    for (std::size_t i = lo; i < hi; i += M) {
      const std::int32_t leaf = new_node(true);
      Node& ln = nodes_[static_cast<std::size_t>(leaf)];
      const std::size_t end = std::min(hi, i + M);
      ln.points.assign(pts.begin() + static_cast<std::ptrdiff_t>(i),
                       pts.begin() + static_cast<std::ptrdiff_t>(end));
      recompute_box(leaf);
      level.push_back(leaf);
    }
  }

  // Pack upper levels the same way over node centers.
  while (level.size() > 1) {
    std::vector<std::int32_t> next;
    const std::size_t num_parents = (level.size() + M - 1) / M;
    const std::size_t pslabs = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(num_parents))));
    const std::size_t pper_slab = pslabs * M;
    std::sort(level.begin(), level.end(), [&](std::int32_t a, std::int32_t b) {
      const Rect& ra = nodes_[static_cast<std::size_t>(a)].box;
      const Rect& rb = nodes_[static_cast<std::size_t>(b)].box;
      if (ra.center_lon() != rb.center_lon())
        return ra.center_lon() < rb.center_lon();
      return ra.center_lat() < rb.center_lat();
    });
    for (std::size_t s = 0; s * pper_slab < level.size(); ++s) {
      const std::size_t lo = s * pper_slab;
      const std::size_t hi = std::min(level.size(), lo + pper_slab);
      std::sort(level.begin() + static_cast<std::ptrdiff_t>(lo),
                level.begin() + static_cast<std::ptrdiff_t>(hi),
                [&](std::int32_t a, std::int32_t b) {
                  const Rect& ra = nodes_[static_cast<std::size_t>(a)].box;
                  const Rect& rb = nodes_[static_cast<std::size_t>(b)].box;
                  if (ra.center_lat() != rb.center_lat())
                    return ra.center_lat() < rb.center_lat();
                  return ra.center_lon() < rb.center_lon();
                });
      for (std::size_t i = lo; i < hi; i += M) {
        const std::int32_t parent = new_node(false);
        Node& pn = nodes_[static_cast<std::size_t>(parent)];
        const std::size_t end = std::min(hi, i + M);
        pn.children.assign(level.begin() + static_cast<std::ptrdiff_t>(i),
                           level.begin() + static_cast<std::ptrdiff_t>(end));
        recompute_box(parent);
        next.push_back(parent);
      }
    }
    // A trailing parent can end up with a single child (e.g. 17 leaves with
    // M=16); internal nodes need >= 2 children, so steal one from the
    // previous parent.
    if (next.size() >= 2) {
      Node& last = nodes_[static_cast<std::size_t>(next.back())];
      if (last.children.size() < 2) {
        Node& prev = nodes_[static_cast<std::size_t>(next[next.size() - 2])];
        last.children.push_back(prev.children.back());
        prev.children.pop_back();
        recompute_box(next.back());
        recompute_box(next[next.size() - 2]);
      }
    }
    level = std::move(next);
  }

  root_ = level.front();
  size_ = pts.size();
}

int RTree::node_height(std::int32_t n) const {
  int h = 1;
  const Node* node = &nodes_[static_cast<std::size_t>(n)];
  while (!node->leaf) {
    ++h;
    node = &nodes_[static_cast<std::size_t>(node->children.front())];
  }
  return h;
}

int RTree::height() const { return root_ < 0 ? 0 : node_height(root_); }

void RTree::merge(const RTree& other) {
  if (other.empty()) return;
  if (empty()) {
    *this = other;
    return;
  }
  if (height() == other.height() && max_entries_ == other.max_entries_) {
    // Graft: copy the other arena in (offsetting node ids) and join the two
    // roots under a fresh root — the cheap sequential merge of phase 3.
    const auto offset = static_cast<std::int32_t>(nodes_.size());
    for (const Node& n : other.nodes_) {
      Node copy = n;
      for (auto& c : copy.children) c += offset;
      nodes_.push_back(std::move(copy));
    }
    const std::int32_t other_root = other.root_ + offset;
    const std::int32_t new_root = new_node(false);
    nodes_[static_cast<std::size_t>(new_root)].children = {root_, other_root};
    recompute_box(new_root);
    root_ = new_root;
    size_ += other.size_;
    return;
  }
  // Heights differ: fall back to reinsertion of the smaller tree's entries.
  if (other.size() > size()) {
    RTree bigger = other;
    for (const auto& e : entries()) bigger.insert(e.lat, e.lon, e.id);
    *this = std::move(bigger);
  } else {
    for (const auto& e : other.entries()) insert(e.lat, e.lon, e.id);
  }
}

std::vector<RTreeEntry> RTree::search(const Rect& rect) const {
  std::vector<RTreeEntry> out;
  if (root_ < 0) return out;
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const std::int32_t n = stack.back();
    stack.pop_back();
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    if (!node.box.intersects(rect)) continue;
    if (node.leaf) {
      for (const auto& p : node.points)
        if (rect.contains(p.lat, p.lon)) out.push_back(p);
    } else {
      for (std::int32_t c : node.children)
        if (nodes_[static_cast<std::size_t>(c)].box.intersects(rect))
          stack.push_back(c);
    }
  }
  return out;
}

std::vector<RTreeEntry> RTree::radius_search_meters(double lat, double lon,
                                                    double radius_m) const {
  // Degree-space prefilter box around the query point.
  const double dlat = radius_m / 111320.0;
  const double coslat =
      std::max(0.01, std::cos(lat * std::numbers::pi / 180.0));
  const double dlon = radius_m / (111320.0 * coslat);
  const Rect box =
      Rect::of(lat - dlat, lon - dlon, lat + dlat, lon + dlon);
  // Exact-distance refinement of the box candidates runs as one batched
  // haversine call (kernels.h) plus the original radius filter, preserving
  // candidate order.
  const auto candidates = search(box);
  std::vector<double> clats(candidates.size()), clons(candidates.size());
  std::vector<double> dist(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    clats[i] = candidates[i].lat;
    clons[i] = candidates[i].lon;
  }
  geo::haversine_meters_batch(lat, lon, clats.data(), clons.data(),
                              candidates.size(), dist.data());
  std::vector<RTreeEntry> out;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (dist[i] <= radius_m) out.push_back(candidates[i]);
  }
  return out;
}

std::vector<RTreeEntry> RTree::knn(double lat, double lon,
                                   std::size_t k) const {
  std::vector<RTreeEntry> out;
  if (root_ < 0 || k == 0) return out;

  struct Item {
    double dist2;
    std::int32_t node;    ///< -1 when this is a concrete entry
    RTreeEntry entry;
    bool operator>(const Item& o) const { return dist2 > o.dist2; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.push({nodes_[static_cast<std::size_t>(root_)].box.min_dist2(lat, lon),
             root_,
             {}});
  while (!heap.empty() && out.size() < k) {
    const Item top = heap.top();
    heap.pop();
    if (top.node < 0) {
      out.push_back(top.entry);
      continue;
    }
    const Node& node = nodes_[static_cast<std::size_t>(top.node)];
    if (node.leaf) {
      for (const auto& p : node.points) {
        const double dlat = p.lat - lat;
        const double dlon = p.lon - lon;
        heap.push({dlat * dlat + dlon * dlon, -1, p});
      }
    } else {
      for (std::int32_t c : node.children) {
        heap.push({nodes_[static_cast<std::size_t>(c)].box.min_dist2(lat, lon),
                   c,
                   {}});
      }
    }
  }
  return out;
}

Rect RTree::bounds() const {
  return root_ < 0 ? Rect{} : nodes_[static_cast<std::size_t>(root_)].box;
}

void RTree::collect(std::int32_t n, std::vector<RTreeEntry>& out) const {
  const Node& node = nodes_[static_cast<std::size_t>(n)];
  if (node.leaf) {
    out.insert(out.end(), node.points.begin(), node.points.end());
  } else {
    for (std::int32_t c : node.children) collect(c, out);
  }
}

std::vector<RTreeEntry> RTree::entries() const {
  std::vector<RTreeEntry> out;
  out.reserve(size_);
  if (root_ >= 0) collect(root_, out);
  return out;
}

void RTree::check_node(std::int32_t n, int depth, int leaf_depth) const {
  const Node& node = nodes_[static_cast<std::size_t>(n)];
  const std::size_t count =
      node.leaf ? node.points.size() : node.children.size();
  GEPETO_CHECK_MSG(count <= static_cast<std::size_t>(max_entries_),
                   "node overflow: " << count);
  if (n != root_) {
    // Grafted merges may leave nodes above the Guttman minimum fill of a
    // pure insertion build; still require non-emptiness plus >= 2 children
    // for internal nodes (structural sanity).
    GEPETO_CHECK(count >= 1);
    if (!node.leaf) GEPETO_CHECK(count >= 2);
  }
  if (node.leaf) {
    GEPETO_CHECK_MSG(depth == leaf_depth, "leaves at unequal depth");
    for (const auto& p : node.points)
      GEPETO_CHECK(node.box.contains(p.lat, p.lon));
  } else {
    Rect box;
    for (std::int32_t c : node.children) {
      box.expand(nodes_[static_cast<std::size_t>(c)].box);
      check_node(c, depth + 1, leaf_depth);
    }
    GEPETO_CHECK_MSG(box == node.box, "stale bounding box");
  }
}

std::string RTree::serialize() const {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "R %d %zu %d %zu\n", max_entries_, size_,
                root_, nodes_.size());
  out += buf;
  for (const Node& n : nodes_) {
    out += n.leaf ? "L" : "I";
    if (n.leaf) {
      for (const auto& p : n.points) {
        std::snprintf(buf, sizeof(buf), " %.17g %.17g %llu", p.lat, p.lon,
                      static_cast<unsigned long long>(p.id));
        out += buf;
      }
    } else {
      for (std::int32_t c : n.children) {
        std::snprintf(buf, sizeof(buf), " %d", c);
        out += buf;
      }
    }
    out.push_back('\n');
  }
  return out;
}

namespace {
const char* skip_ws(const char* p, const char* end) {
  while (p != end && *p == ' ') ++p;
  return p;
}
}  // namespace

RTree RTree::deserialize(std::string_view data) {
  std::size_t pos = 0;
  auto next_line = [&]() -> std::string_view {
    GEPETO_CHECK_MSG(pos < data.size(), "truncated R-Tree serialization");
    std::size_t end = data.find('\n', pos);
    if (end == std::string_view::npos) end = data.size();
    const std::string_view line = data.substr(pos, end - pos);
    pos = end + 1;
    return line;
  };

  const std::string_view header = next_line();
  GEPETO_CHECK_MSG(header.size() > 2 && header[0] == 'R',
                   "bad R-Tree header");
  int max_entries = 0;
  std::size_t size = 0, num_nodes = 0;
  std::int32_t root = -1;
  {
    const char* p = header.data() + 1;
    const char* end = header.data() + header.size();
    p = skip_ws(p, end);
    p = std::from_chars(p, end, max_entries).ptr;
    p = skip_ws(p, end);
    p = std::from_chars(p, end, size).ptr;
    p = skip_ws(p, end);
    p = std::from_chars(p, end, root).ptr;
    p = skip_ws(p, end);
    p = std::from_chars(p, end, num_nodes).ptr;
  }
  RTree tree(max_entries);
  tree.size_ = size;
  tree.root_ = num_nodes == 0 ? -1 : root;
  tree.nodes_.resize(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    const std::string_view line = next_line();
    GEPETO_CHECK_MSG(!line.empty() && (line[0] == 'L' || line[0] == 'I'),
                     "bad R-Tree node line");
    Node& n = tree.nodes_[i];
    n.leaf = line[0] == 'L';
    const char* p = line.data() + 1;
    const char* end = line.data() + line.size();
    while (skip_ws(p, end) != end) {
      p = skip_ws(p, end);
      if (n.leaf) {
        RTreeEntry e;
        p = std::from_chars(p, end, e.lat).ptr;
        p = skip_ws(p, end);
        p = std::from_chars(p, end, e.lon).ptr;
        p = skip_ws(p, end);
        p = std::from_chars(p, end, e.id).ptr;
        n.points.push_back(e);
      } else {
        std::int32_t c = -1;
        p = std::from_chars(p, end, c).ptr;
        GEPETO_CHECK_MSG(
            c >= 0 && static_cast<std::size_t>(c) < num_nodes,
            "child id out of range");
        n.children.push_back(c);
      }
    }
  }
  // Rebuild bounding boxes bottom-up.
  if (tree.root_ >= 0) {
    // Post-order traversal with an explicit stack.
    std::vector<std::pair<std::int32_t, bool>> stack{{tree.root_, false}};
    while (!stack.empty()) {
      auto [n, expanded] = stack.back();
      stack.pop_back();
      Node& node = tree.nodes_[static_cast<std::size_t>(n)];
      if (node.leaf || expanded) {
        tree.recompute_box(n);
      } else {
        stack.push_back({n, true});
        for (std::int32_t c : node.children) stack.push_back({c, false});
      }
    }
  }
  return tree;
}

void RTree::check_invariants() const {
  if (root_ < 0) {
    GEPETO_CHECK(size_ == 0);
    return;
  }
  // Locate leaf depth by walking leftmost path.
  int leaf_depth = 0;
  std::int32_t cur = root_;
  while (!nodes_[static_cast<std::size_t>(cur)].leaf) {
    cur = nodes_[static_cast<std::size_t>(cur)].children.front();
    ++leaf_depth;
  }
  check_node(root_, 0, leaf_depth);
  GEPETO_CHECK(entries().size() == size_);
}

}  // namespace gepeto::index
