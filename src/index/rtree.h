// A 2D R-Tree over (latitude, longitude) points (Guttman 1984), used by
// DJ-Cluster's neighborhood-identification phase: "computing the
// neighborhood of a point with such a structure can be done in O(log n)".
//
// Supported construction paths mirror the paper:
//   * dynamic insertion (Guttman quadratic split) — the classic algorithm;
//   * STR bulk loading (sort-tile-recursive) — used for per-partition builds
//     in the MapReduce R-Tree construction (Section VII-C phase 2);
//   * merge() of several trees into one — phase 3 of the MapReduce build.
//
// Queries: rectangle search, radius search in meters, and best-first kNN.
// Node storage is an index-based arena (no per-node allocations).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "index/bbox.h"

namespace gepeto::index {

/// A point payload: position plus a caller-provided identifier.
struct RTreeEntry {
  double lat = 0.0;
  double lon = 0.0;
  std::uint64_t id = 0;
};

class RTree {
 public:
  /// `max_entries` is Guttman's M; min entries m = M * 2 / 5 (clamped >= 2).
  explicit RTree(int max_entries = 16);

  /// Insert one point (Guttman: ChooseLeaf + quadratic split on overflow).
  void insert(double lat, double lon, std::uint64_t id);

  /// Bulk-load with Sort-Tile-Recursive packing. The tree must be empty.
  void bulk_load_str(std::span<const RTreeEntry> entries);

  /// Append every entry of `other` into this tree. If both trees are
  /// non-empty and of equal height their roots are joined under a new root
  /// when that keeps the tree balanced; otherwise entries are reinserted.
  void merge(const RTree& other);

  /// All entries inside `rect` (inclusive), in unspecified order.
  std::vector<RTreeEntry> search(const Rect& rect) const;

  /// All entries within `radius_m` meters of (lat, lon) by haversine
  /// distance. Uses a degree-space bounding box prefilter.
  std::vector<RTreeEntry> radius_search_meters(double lat, double lon,
                                               double radius_m) const;

  /// The k nearest entries to (lat, lon) by degree-space Euclidean distance,
  /// nearest first (best-first traversal).
  std::vector<RTreeEntry> knn(double lat, double lon, std::size_t k) const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Height of the tree (0 when empty, 1 for a single leaf root).
  int height() const;

  /// Bounding box of everything stored (invalid Rect when empty).
  Rect bounds() const;

  /// Every stored entry (walks the leaves).
  std::vector<RTreeEntry> entries() const;

  int max_entries() const { return max_entries_; }

  /// Structural invariants, asserted by tests: entry counts within [m, M]
  /// (root excepted), parent boxes cover children, leaves at equal depth.
  /// Throws CheckFailure if violated.
  void check_invariants() const;

  /// Text serialization (exact round-trip, including structure); used by the
  /// MapReduce construction to ship per-partition trees from the phase-2
  /// reducers to the phase-3 merger. One line per node.
  std::string serialize() const;
  static RTree deserialize(std::string_view data);

 private:
  struct Node {
    Rect box;
    bool leaf = true;
    std::vector<std::int32_t> children;   ///< node ids (internal nodes)
    std::vector<RTreeEntry> points;       ///< payload (leaf nodes)
  };

  std::int32_t new_node(bool leaf);
  void recompute_box(std::int32_t n);
  Rect entry_box(const Node& node, std::size_t i) const;
  std::int32_t choose_leaf(std::int32_t n, const Rect& r, int target_level,
                           int level, std::vector<std::int32_t>& path);
  /// Split node `n` (overflowing); returns the new sibling node id.
  std::int32_t split(std::int32_t n);
  void insert_impl(const Rect& r, const RTreeEntry* point,
                   std::int32_t subtree, int target_level);
  int node_height(std::int32_t n) const;
  void collect(std::int32_t n, std::vector<RTreeEntry>& out) const;
  void check_node(std::int32_t n, int depth, int leaf_depth) const;

  int max_entries_;
  int min_entries_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  std::size_t size_ = 0;
};

}  // namespace gepeto::index
