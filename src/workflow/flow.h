// JobFlow — a typed DAG of MapReduce jobs over the simulated cluster.
//
// Every analysis in the paper is a *multi-job* workflow: k-means runs one
// MapReduce job per iteration until convergence (Section VI), DJ-Cluster
// chains two pipelined map-only preprocessing jobs plus a clustering job
// (Section VII, Fig. 5), and the R-Tree build is a three-phase job sequence
// (Section VII-C, Fig. 6). JobFlow replaces the hand-rolled sequential glue
// of those drivers with a declarative DAG:
//
//   * Nodes are map-only jobs, map-reduce jobs, native (in-process driver)
//     steps, or an iterate_until loop (for k-means-style convergence).
//   * Edges are dataset lineage: a node that `reads` a DFS path some other
//     node `writes` depends on it. Explicit control edges (`after`) cover
//     dependencies carried through driver memory instead of the DFS.
//   * The executor runs nodes in a deterministic topological order on the
//     host, but schedules them on the *simulated* cluster clock as a DAG:
//     independent branches overlap (a node's virtual start is the max of its
//     producers' virtual finishes), so FlowResult reports both the
//     overlapped makespan and the sequential sum a single-job-at-a-time
//     driver would have paid.
//   * Intermediate datasets are garbage-collected from the DFS as soon as
//     every consumer finished (a `keep` flag pins debugging outputs), and a
//     node may declare `scratch` prefixes that are dropped when it
//     completes.
//   * Fault tolerance composes with PR 1: a node whose job exhausts its
//     retries raises FlowError — an mr::JobError subclass naming the node
//     and its upstream lineage — and a flow with a `state_path` manifest can
//     resume from its last fully-completed frontier (loops resume at the
//     last completed iteration).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "mapreduce/cluster.h"
#include "mapreduce/job.h"
#include "telemetry/telemetry.h"

namespace gepeto::mr {
class Dfs;
}

namespace gepeto::flow {

enum class NodeKind { kMapOnly, kMapReduce, kNative, kLoop };

/// Raised when a node fails (its job threw mr::JobError after exhausting the
/// failure policy). IS-A mr::JobError — existing callers that catch the job
/// error keep working — but additionally names the failed node and its
/// upstream lineage so a flow of a dozen jobs pinpoints what sank it.
class FlowError : public mr::JobError {
 public:
  FlowError(const mr::JobError& cause, const std::string& flow_name,
            std::string node, std::vector<std::string> lineage);

  /// Name of the node whose job failed.
  const std::string& node() const { return node_; }
  /// Names of all transitive upstream nodes, in execution order.
  const std::vector<std::string>& lineage() const { return lineage_; }

 private:
  std::string node_;
  std::vector<std::string> lineage_;
};

struct FlowOptions {
  /// Disable dataset GC entirely (debugging): every intermediate stays.
  bool keep_intermediates = false;
  /// DFS path of the completion manifest. Empty (the default) disables state
  /// tracking — the flow performs no DFS writes of its own, so a migrated
  /// driver is byte-identical to its pre-flow incarnation. Non-empty enables
  /// resume: the manifest is rewritten after every completed node (and every
  /// completed loop iteration).
  std::string state_path;
  /// Load `state_path` and skip nodes it records as completed, re-running a
  /// completed node only if an output of it vanished (e.g. was GC'd by a
  /// crashed run) while a pending node still needs it. Loops restart at the
  /// recorded iteration.
  bool resume = false;
  /// Remove the manifest once the whole flow succeeded.
  bool remove_state_on_success = true;
  /// Telemetry sinks for this flow run. Null (the default) means the
  /// executor falls back to the ambient handle on the Dfs; a null result
  /// does no telemetry work at all. The executor installs the resolved
  /// handle as the DFS ambient telemetry for the duration of the run, so
  /// every job a node launches inherits it automatically.
  telemetry::Telemetry telemetry;
};

/// Per-node outcome.
struct NodeResult {
  std::string name;
  NodeKind kind = NodeKind::kNative;
  /// Resume: the manifest proved this node already completed; nothing ran.
  bool skipped = false;
  /// Loop nodes: iterations executed by this run (resumed ones excluded).
  int iterations = 0;
  /// Loop nodes: the predicate turned true (vs. max-iterations cutoff).
  bool converged = false;
  /// Virtual-clock window under the DAG schedule (seconds).
  double sim_start_seconds = 0.0;
  double sim_finish_seconds = 0.0;
  double sim_seconds = 0.0;   ///< virtual duration (= finish - start)
  double real_seconds = 0.0;  ///< host wall time of this node
  /// Aggregate of every job the node ran (absorb() semantics across jobs).
  mr::JobResult job;
  bool ran_jobs = false;  ///< whether `job` holds at least one job result
};

struct FlowResult {
  std::string flow_name;
  std::vector<NodeResult> nodes;  ///< in execution (topological) order

  /// DAG makespan on the simulated clock: independent branches overlap.
  double sim_seconds = 0.0;
  /// What a sequential one-job-at-a-time driver would have paid: the sum of
  /// every node's virtual duration. speedup = sequential / makespan.
  double sim_sequential_seconds = 0.0;
  double real_seconds = 0.0;

  int nodes_run = 0;
  int nodes_skipped = 0;

  /// Dataset GC: intermediates removed once all consumers finished.
  std::uint64_t gc_datasets = 0;
  std::uint64_t gc_bytes = 0;

  /// Union of all node counters.
  mr::Counters counters;

  /// Lookup by node name (nullptr if absent).
  const NodeResult* node(const std::string& name) const;
};

/// Handed to every node body: access to the cluster, plus billing hooks so
/// driver-side work can charge the simulated clock.
class FlowEngine {
 public:
  mr::Dfs& dfs() { return dfs_; }
  const mr::ClusterConfig& cluster() const { return cluster_; }

  /// Bill extra simulated seconds to the current node (e.g. a native node
  /// modeling driver-side consolidation cost). Job time is billed
  /// automatically from the returned JobResult.
  void charge_sim(double seconds);

 private:
  friend class Flow;
  FlowEngine(mr::Dfs& dfs, const mr::ClusterConfig& cluster)
      : dfs_(dfs), cluster_(cluster) {}

  mr::Dfs& dfs_;
  const mr::ClusterConfig& cluster_;
  double charged_sim_seconds_ = 0.0;
};

class Flow {
 public:
  /// A job node body: runs exactly one engine job and returns its result
  /// (which the executor bills to the virtual clock and aggregates).
  using JobFn = std::function<mr::JobResult(FlowEngine&)>;
  /// A native node body: driver-side work (consolidating cache files,
  /// parsing outputs). Bills only what it charge_sim()s.
  using NativeFn = std::function<void(FlowEngine&)>;
  /// Loop body: runs iteration `iter` (absolute, 0-based — resumed flows
  /// start past 0) and returns its job result.
  using LoopBodyFn = std::function<mr::JobResult(FlowEngine&, int iter)>;
  /// Convergence predicate, checked *before* each iteration (so a loop may
  /// run zero iterations): given the next iteration index, return true to
  /// stop the loop as converged.
  using LoopDoneFn = std::function<bool(FlowEngine&, int next_iter)>;

  /// Chainable per-node declaration handle (valid until run()).
  class NodeRef {
   public:
    /// Declare a DFS dataset (file or directory prefix, trailing '/'
    /// ignored) this node reads. Creates a lineage edge from its writer.
    NodeRef& reads(const std::string& dataset);
    /// Declare a DFS dataset this node produces. At most one writer per
    /// dataset per flow.
    NodeRef& writes(const std::string& dataset);
    /// writes() + pin: never garbage-collect this dataset.
    NodeRef& keep(const std::string& dataset);
    /// A DFS path prefix of node-private temporaries, removed as soon as the
    /// node completes (unless keep_intermediates).
    NodeRef& scratch(const std::string& prefix);
    /// Explicit control edge for dependencies carried through driver memory
    /// rather than the DFS. The named node must already be declared.
    NodeRef& after(const std::string& node);

   private:
    friend class Flow;
    NodeRef(Flow* flow, std::size_t index) : flow_(flow), index_(index) {}
    Flow* flow_;
    std::size_t index_;
  };

  explicit Flow(std::string name = "flow") : name_(std::move(name)) {}

  NodeRef add_map_only(const std::string& name, JobFn fn);
  NodeRef add_mapreduce(const std::string& name, JobFn fn);
  NodeRef add_native(const std::string& name, NativeFn fn);
  NodeRef add_iterate_until(const std::string& name, LoopDoneFn done,
                            int max_iterations, LoopBodyFn body);

  /// Execute the DAG. Throws FlowError when a node's job fails,
  /// gepeto::CheckFailure on a malformed graph (cycle, duplicate writer,
  /// unknown `after` target, duplicate node name).
  FlowResult run(mr::Dfs& dfs, const mr::ClusterConfig& cluster,
                 const FlowOptions& options = {});

  const std::string& name() const { return name_; }
  std::size_t size() const { return nodes_.size(); }

 private:
  struct Node {
    std::string name;
    NodeKind kind = NodeKind::kNative;
    JobFn job_fn;
    NativeFn native_fn;
    LoopBodyFn loop_body;
    LoopDoneFn loop_done;
    int max_iterations = 0;
    std::vector<std::string> reads;    // normalized dataset ids
    std::vector<std::string> writes;   // normalized dataset ids
    std::vector<std::string> scratch;  // raw prefixes
    std::vector<std::size_t> after;    // explicit control-edge sources
  };

  NodeRef add_node(const std::string& name, NodeKind kind);
  std::vector<std::size_t> topological_order() const;
  std::vector<std::vector<std::size_t>> dependency_edges() const;

  std::string name_;
  std::vector<Node> nodes_;
  std::set<std::string> kept_;  // datasets pinned against GC
};

}  // namespace gepeto::flow
