#include "workflow/flow.h"

#include <algorithm>
#include <charconv>
#include <sstream>
#include <string_view>

#include "common/check.h"
#include "common/stopwatch.h"
#include "mapreduce/dfs.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gepeto::flow {

namespace {

/// Dataset ids are DFS paths; a trailing '/' (directory-style read prefix)
/// and the bare path (directory-style write) must compare equal.
std::string normalize_dataset(const std::string& path) {
  GEPETO_CHECK_MSG(!path.empty(), "empty dataset path in flow declaration");
  std::string p = path;
  while (p.size() > 1 && p.back() == '/') p.pop_back();
  return p;
}

/// A dataset is present if it exists as a file or as a non-empty directory
/// prefix (engine jobs write `dataset/part-*`).
bool dataset_present(const mr::Dfs& dfs, const std::string& ds) {
  return dfs.exists(ds) || !dfs.list(ds + "/").empty();
}

std::uint64_t dataset_bytes(const mr::Dfs& dfs, const std::string& ds) {
  std::uint64_t bytes = dfs.total_size(ds + "/");
  if (dfs.exists(ds)) bytes += dfs.file_size(ds);
  return bytes;
}

void remove_dataset(mr::Dfs& dfs, const std::string& ds) {
  if (dfs.exists(ds)) dfs.remove(ds);
  dfs.remove_prefix(ds + "/");
}

std::string lineage_suffix(const std::string& flow_name,
                           const std::string& node,
                           const std::vector<std::string>& lineage) {
  std::ostringstream os;
  os << "; flow '" << flow_name << "' node '" << node << "'";
  if (!lineage.empty()) {
    os << " (upstream: ";
    for (std::size_t i = 0; i < lineage.size(); ++i) {
      if (i) os << " -> ";
      os << lineage[i];
    }
    os << ")";
  }
  return os.str();
}

}  // namespace

FlowError::FlowError(const mr::JobError& cause, const std::string& flow_name,
                     std::string node, std::vector<std::string> lineage)
    : mr::JobError(cause, lineage_suffix(flow_name, node, lineage)),
      node_(std::move(node)),
      lineage_(std::move(lineage)) {}

const NodeResult* FlowResult::node(const std::string& name) const {
  for (const auto& n : nodes)
    if (n.name == name) return &n;
  return nullptr;
}

void FlowEngine::charge_sim(double seconds) {
  GEPETO_CHECK(seconds >= 0.0);
  charged_sim_seconds_ += seconds;
}

// --- graph construction ------------------------------------------------------

Flow::NodeRef Flow::add_node(const std::string& name, NodeKind kind) {
  GEPETO_CHECK_MSG(!name.empty(), "flow node needs a name");
  for (const auto& n : nodes_)
    GEPETO_CHECK_MSG(n.name != name,
                     "duplicate flow node name '" << name << "'");
  Node node;
  node.name = name;
  node.kind = kind;
  nodes_.push_back(std::move(node));
  return NodeRef(this, nodes_.size() - 1);
}

Flow::NodeRef Flow::add_map_only(const std::string& name, JobFn fn) {
  auto ref = add_node(name, NodeKind::kMapOnly);
  nodes_[ref.index_].job_fn = std::move(fn);
  return ref;
}

Flow::NodeRef Flow::add_mapreduce(const std::string& name, JobFn fn) {
  auto ref = add_node(name, NodeKind::kMapReduce);
  nodes_[ref.index_].job_fn = std::move(fn);
  return ref;
}

Flow::NodeRef Flow::add_native(const std::string& name, NativeFn fn) {
  auto ref = add_node(name, NodeKind::kNative);
  nodes_[ref.index_].native_fn = std::move(fn);
  return ref;
}

Flow::NodeRef Flow::add_iterate_until(const std::string& name, LoopDoneFn done,
                                      int max_iterations, LoopBodyFn body) {
  GEPETO_CHECK_MSG(max_iterations > 0,
                   "iterate_until '" << name << "' needs max_iterations > 0");
  auto ref = add_node(name, NodeKind::kLoop);
  nodes_[ref.index_].loop_done = std::move(done);
  nodes_[ref.index_].loop_body = std::move(body);
  nodes_[ref.index_].max_iterations = max_iterations;
  return ref;
}

Flow::NodeRef& Flow::NodeRef::reads(const std::string& dataset) {
  flow_->nodes_[index_].reads.push_back(normalize_dataset(dataset));
  return *this;
}

Flow::NodeRef& Flow::NodeRef::writes(const std::string& dataset) {
  flow_->nodes_[index_].writes.push_back(normalize_dataset(dataset));
  return *this;
}

Flow::NodeRef& Flow::NodeRef::keep(const std::string& dataset) {
  writes(dataset);
  flow_->kept_.insert(normalize_dataset(dataset));
  return *this;
}

Flow::NodeRef& Flow::NodeRef::scratch(const std::string& prefix) {
  GEPETO_CHECK_MSG(!prefix.empty(), "empty scratch prefix");
  flow_->nodes_[index_].scratch.push_back(prefix);
  return *this;
}

Flow::NodeRef& Flow::NodeRef::after(const std::string& node) {
  for (std::size_t i = 0; i < flow_->nodes_.size(); ++i) {
    if (flow_->nodes_[i].name == node) {
      GEPETO_CHECK_MSG(i != index_,
                       "flow node '" << node << "' cannot run after itself");
      flow_->nodes_[index_].after.push_back(i);
      return *this;
    }
  }
  GEPETO_FAIL("after('" << node << "'): no such flow node declared yet");
}

// --- scheduling --------------------------------------------------------------

std::vector<std::vector<std::size_t>> Flow::dependency_edges() const {
  // Writer index per dataset; a dataset may have at most one producer, or
  // lineage would be ambiguous.
  std::map<std::string, std::size_t> writer;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const auto& ds : nodes_[i].writes) {
      const auto [it, inserted] = writer.emplace(ds, i);
      GEPETO_CHECK_MSG(inserted || it->second == i,
                       "dataset '" << ds << "' written by both '"
                                   << nodes_[it->second].name << "' and '"
                                   << nodes_[i].name << "'");
    }
  }

  std::vector<std::vector<std::size_t>> deps(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const auto& ds : nodes_[i].reads) {
      const auto it = writer.find(ds);
      if (it != writer.end() && it->second != i) deps[i].push_back(it->second);
    }
    for (std::size_t a : nodes_[i].after) deps[i].push_back(a);
    std::sort(deps[i].begin(), deps[i].end());
    deps[i].erase(std::unique(deps[i].begin(), deps[i].end()), deps[i].end());
  }
  return deps;
}

std::vector<std::size_t> Flow::topological_order() const {
  const auto deps = dependency_edges();
  std::vector<std::size_t> indegree(nodes_.size(), 0);
  std::vector<std::vector<std::size_t>> out(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    indegree[i] = deps[i].size();
    for (std::size_t d : deps[i]) out[d].push_back(i);
  }
  // Kahn's algorithm; the ready set drains in declaration order so the host
  // execution order (and therefore every DFS write sequence) is
  // deterministic.
  std::set<std::size_t> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (indegree[i] == 0) ready.insert(i);
  std::vector<std::size_t> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const std::size_t i = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(i);
    for (std::size_t next : out[i])
      if (--indegree[next] == 0) ready.insert(next);
  }
  GEPETO_CHECK_MSG(order.size() == nodes_.size(),
                   "flow '" << name_ << "' has a dependency cycle");
  return order;
}

// --- execution ---------------------------------------------------------------

namespace {

struct FlowState {
  std::set<std::string> done_nodes;
  std::map<std::string, int> loop_iters;
};

FlowState load_state(const mr::Dfs& dfs, const std::string& path) {
  FlowState state;
  if (path.empty() || !dfs.exists(path)) return state;
  const std::string_view data = dfs.read(path);
  std::size_t start = 0;
  while (start < data.size()) {
    std::size_t end = data.find('\n', start);
    if (end == std::string_view::npos) end = data.size();
    const std::string_view line = data.substr(start, end - start);
    if (line.rfind("node ", 0) == 0) {
      state.done_nodes.emplace(line.substr(5));
    } else if (line.rfind("iter ", 0) == 0) {
      const std::size_t space = line.rfind(' ');
      GEPETO_CHECK_MSG(space > 5, "bad flow manifest line: " << line);
      int n = 0;
      const auto r = std::from_chars(line.data() + space + 1,
                                     line.data() + line.size(), n);
      GEPETO_CHECK_MSG(r.ec == std::errc(),
                       "bad flow manifest line: " << line);
      state.loop_iters.emplace(std::string(line.substr(5, space - 5)), n);
    }
    start = end + 1;
  }
  return state;
}

void save_state(mr::Dfs& dfs, const std::string& path, const FlowState& state) {
  if (path.empty()) return;
  std::string out = "gepeto-flow-state v1\n";
  for (const auto& n : state.done_nodes) out += "node " + n + "\n";
  for (const auto& [n, i] : state.loop_iters)
    out += "iter " + n + " " + std::to_string(i) + "\n";
  dfs.put(path, std::move(out));
}

const char* node_kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kMapOnly: return "map-only";
    case NodeKind::kMapReduce: return "mapreduce";
    case NodeKind::kNative: return "native";
    case NodeKind::kLoop: return "loop";
  }
  return "?";
}

/// Installs the flow's resolved telemetry handle as the DFS ambient handle
/// for the duration of run(), so jobs launched by node bodies (which see
/// only the Dfs) inherit the flow's sinks; restores the previous handle on
/// every exit path.
class AmbientTelemetryGuard {
 public:
  AmbientTelemetryGuard(mr::Dfs& dfs, telemetry::Telemetry t)
      : dfs_(dfs), saved_(dfs.telemetry()) {
    dfs_.set_telemetry(t);
  }
  ~AmbientTelemetryGuard() { dfs_.set_telemetry(saved_); }
  AmbientTelemetryGuard(const AmbientTelemetryGuard&) = delete;
  AmbientTelemetryGuard& operator=(const AmbientTelemetryGuard&) = delete;

 private:
  mr::Dfs& dfs_;
  telemetry::Telemetry saved_;
};

}  // namespace

FlowResult Flow::run(mr::Dfs& dfs, const mr::ClusterConfig& cluster,
                     const FlowOptions& options) {
  const auto deps = dependency_edges();
  const auto order = topological_order();

  // Producer per dataset and the set of consumers still pending, for GC.
  std::map<std::string, std::size_t> producer;
  std::map<std::string, int> pending_consumers;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    for (const auto& ds : nodes_[i].writes) producer.emplace(ds, i);
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    for (const auto& ds : nodes_[i].reads) {
      const auto it = producer.find(ds);
      if (it != producer.end() && it->second != i) ++pending_consumers[ds];
    }

  FlowState state;
  if (options.resume) state = load_state(dfs, options.state_path);

  // Resolve sinks (explicit options win, ambient DFS handle as fallback) and
  // make them ambient so node bodies' jobs pick them up through the Dfs.
  const telemetry::Telemetry tel = options.telemetry.or_else(dfs.telemetry());
  AmbientTelemetryGuard ambient_guard(dfs, tel);
  telemetry::WallScope flow_wall;
  if (tel.trace) flow_wall = tel.trace->wall_span("flow:" + name_, "flow");
  // All sim spans of this flow are laid out relative to the cursor position
  // at entry, so flows compose on a shared recorder timeline.
  const double flow_base = tel.trace ? tel.trace->sim_cursor() : 0.0;
  std::int64_t flow_span = telemetry::TraceRecorder::kNoParent;
  if (tel.trace) {
    flow_span = tel.trace->begin_sim_span(
        "flow:" + name_, "flow", flow_base, -1, 0,
        {{"nodes", std::to_string(nodes_.size())}});
  }

  FlowResult result;
  result.flow_name = name_;
  result.nodes.reserve(nodes_.size());
  std::vector<double> finish(nodes_.size(), 0.0);

  // Upstream lineage of a node: every transitive dependency, reported in
  // execution order (for FlowError and for resume decisions).
  const auto lineage_of = [&](std::size_t target) {
    std::vector<bool> up(nodes_.size(), false);
    // `order` is topological, so one reverse sweep closes the reachability.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const std::size_t i = *it;
      if (i == target || up[i]) {
        for (std::size_t d : deps[i]) up[d] = true;
      }
    }
    std::vector<std::string> names;
    for (std::size_t i : order)
      if (up[i]) names.push_back(nodes_[i].name);
    return names;
  };

  const auto gc_dataset = [&](const std::string& ds, double sim_when) {
    if (options.keep_intermediates || kept_.count(ds)) return;
    if (!dataset_present(dfs, ds)) return;
    const std::uint64_t bytes = dataset_bytes(dfs, ds);
    result.gc_bytes += bytes;
    ++result.gc_datasets;
    remove_dataset(dfs, ds);
    if (tel.trace) {
      tel.trace->add_sim_instant("gc:" + ds, "flow", sim_when, -1, 0,
                                 {{"bytes", std::to_string(bytes)}});
    }
  };

  // A completed node may be skipped on resume unless one of its outputs
  // vanished (e.g. a crashed later run GC'd it) while a still-pending node
  // needs it.
  const auto must_rerun = [&](std::size_t i) {
    for (const auto& ds : nodes_[i].writes) {
      if (dataset_present(dfs, ds)) continue;
      for (std::size_t c = 0; c < nodes_.size(); ++c) {
        if (c == i || state.done_nodes.count(nodes_[c].name)) continue;
        const auto& r = nodes_[c].reads;
        if (std::find(r.begin(), r.end(), ds) != r.end()) return true;
      }
    }
    return false;
  };

  for (std::size_t i : order) {
    Node& node = nodes_[i];
    NodeResult nr;
    nr.name = node.name;
    nr.kind = node.kind;
    for (std::size_t d : deps[i])
      nr.sim_start_seconds = std::max(nr.sim_start_seconds, finish[d]);

    const bool skip = options.resume && state.done_nodes.count(node.name) &&
                      !must_rerun(i);
    if (skip) {
      nr.skipped = true;
      ++result.nodes_skipped;
      if (tel.trace) {
        tel.trace->add_sim_instant(
            "node:" + node.name, "flow",
            flow_base + nr.sim_start_seconds, -1, 0,
            {{"kind", node_kind_name(node.kind)}, {"skipped", "resume"}});
      }
    } else {
      // Jobs this node launches lay their spans at the recorder cursor; park
      // it at the node's virtual start so they land inside the node span.
      std::int64_t node_span = telemetry::TraceRecorder::kNoParent;
      if (tel.trace) {
        tel.trace->set_sim_cursor(flow_base + nr.sim_start_seconds);
        node_span = tel.trace->begin_sim_span(
            "node:" + node.name, "node", flow_base + nr.sim_start_seconds, -1,
            0, {{"kind", node_kind_name(node.kind)}});
      }
      telemetry::WallScope node_wall;
      if (tel.trace)
        node_wall = tel.trace->wall_span("node:" + node.name, "node");
      FlowEngine engine(dfs, cluster);
      Stopwatch watch;
      const auto bill = [&](const mr::JobResult& jr) {
        nr.sim_seconds += jr.sim_seconds;
        if (nr.ran_jobs)
          nr.job.absorb(jr);
        else
          nr.job = jr;
        nr.ran_jobs = true;
      };
      try {
        switch (node.kind) {
          case NodeKind::kMapOnly:
          case NodeKind::kMapReduce:
            bill(node.job_fn(engine));
            break;
          case NodeKind::kNative:
            node.native_fn(engine);
            break;
          case NodeKind::kLoop: {
            int iter = 0;
            if (options.resume) {
              const auto it = state.loop_iters.find(node.name);
              if (it != state.loop_iters.end()) iter = it->second;
            }
            while (true) {
              if (node.loop_done(engine, iter)) {
                nr.converged = true;
                break;
              }
              if (iter >= node.max_iterations) break;
              bill(node.loop_body(engine, iter));
              ++iter;
              ++nr.iterations;
              if (!options.state_path.empty()) {
                state.loop_iters[node.name] = iter;
                save_state(dfs, options.state_path, state);
              }
            }
            break;
          }
        }
      } catch (const FlowError&) {
        // A nested flow already attributed the failure; close our open spans
        // at the failure point so the export stays well-formed.
        if (tel.trace) {
          const double at = tel.trace->sim_cursor();
          tel.trace->end_sim_span(node_span, at, {{"outcome", "failed"}});
          tel.trace->end_sim_span(flow_span, at, {{"outcome", "failed"}});
        }
        throw;
      } catch (const mr::JobError& e) {
        // Persist progress so a resumed run restarts from this frontier.
        save_state(dfs, options.state_path, state);
        if (tel.trace) {
          const double at = tel.trace->sim_cursor();
          tel.trace->end_sim_span(node_span, at, {{"outcome", "failed"}});
          tel.trace->end_sim_span(flow_span, at, {{"outcome", "failed"}});
        }
        throw FlowError(e, name_, node.name, lineage_of(i));
      }
      nr.sim_seconds += engine.charged_sim_seconds_;
      nr.real_seconds = watch.seconds();
      if (tel.trace) {
        std::vector<telemetry::SpanArg> end_args;
        if (node.kind == NodeKind::kLoop) {
          end_args.push_back({"iterations", std::to_string(nr.iterations)});
          end_args.push_back({"converged", nr.converged ? "true" : "false"});
        }
        tel.trace->end_sim_span(
            node_span, flow_base + nr.sim_start_seconds + nr.sim_seconds,
            std::move(end_args));
      }
      if (tel.metrics && node.kind == NodeKind::kLoop && nr.iterations > 0) {
        tel.metrics
            ->counter("flow_loop_iterations_total",
                      "iterate_until loop iterations executed")
            .add(nr.iterations);
      }
      ++result.nodes_run;
      if (!options.keep_intermediates)
        for (const auto& prefix : node.scratch) {
          // Scratch removal is accounted like dataset GC.
          const std::uint64_t bytes = dfs.total_size(prefix);
          if (bytes > 0 || !dfs.list(prefix).empty()) {
            result.gc_bytes += bytes;
            ++result.gc_datasets;
            dfs.remove_prefix(prefix);
          }
        }
      state.done_nodes.insert(node.name);
      save_state(dfs, options.state_path, state);
    }

    nr.sim_finish_seconds = nr.sim_start_seconds + nr.sim_seconds;
    finish[i] = nr.sim_finish_seconds;
    result.sim_seconds = std::max(result.sim_seconds, nr.sim_finish_seconds);
    result.sim_sequential_seconds += nr.sim_seconds;
    result.real_seconds += nr.real_seconds;
    for (const auto& [k, v] : nr.job.counters) result.counters[k] += v;

    // GC: a dataset produced and consumed inside the flow is dropped the
    // moment its last consumer (this node, possibly) finished.
    for (const auto& ds : node.reads) {
      const auto it = producer.find(ds);
      if (it == producer.end() || it->second == i) continue;
      if (--pending_consumers[ds] == 0) gc_dataset(ds, nr.sim_finish_seconds + flow_base);
    }

    result.nodes.push_back(std::move(nr));
  }

  if (!options.state_path.empty() && options.remove_state_on_success &&
      dfs.exists(options.state_path))
    dfs.remove(options.state_path);

  if (tel.trace) {
    tel.trace->end_sim_span(
        flow_span, flow_base + result.sim_seconds,
        {{"nodes_run", std::to_string(result.nodes_run)},
         {"nodes_skipped", std::to_string(result.nodes_skipped)},
         {"gc_datasets", std::to_string(result.gc_datasets)}});
    // Leave the cursor at the flow's virtual finish so a follow-up flow or
    // job starts after this one on the shared timeline.
    tel.trace->set_sim_cursor(flow_base + result.sim_seconds);
  }
  if (tel.metrics) {
    auto& m = *tel.metrics;
    m.counter("flow_runs_total", "JobFlow executions completed").inc();
    m.counter("flow_nodes_run_total", "flow nodes executed")
        .add(result.nodes_run);
    if (result.nodes_skipped > 0)
      m.counter("flow_nodes_skipped_total", "flow nodes skipped on resume")
          .add(result.nodes_skipped);
    if (result.gc_datasets > 0) {
      m.counter("flow_gc_datasets_total", "intermediate datasets collected")
          .add(static_cast<std::int64_t>(result.gc_datasets));
      m.counter("flow_gc_bytes_total", "bytes reclaimed by dataset GC")
          .add(static_cast<std::int64_t>(result.gc_bytes));
    }
    auto& h = m.histogram("flow_node_sim_seconds",
                          telemetry::default_time_buckets(),
                          "simulated duration of executed flow nodes");
    for (const NodeResult& n : result.nodes)
      if (!n.skipped) h.observe(n.sim_seconds);
  }
  return result;
}

}  // namespace gepeto::flow
