// Distance metrics over spatial coordinates (paper Section VI).
//
// The paper's k-means experiments compare the *squared Euclidean* distance
// (over raw decimal degrees, cheaper, order-preserving with Euclidean) with
// the *Haversine* great-circle distance (takes the shape of the earth into
// account, more expensive per evaluation). Manhattan and plain Euclidean are
// also provided, as GEPETO lets the analyst choose the metric.
#pragma once

#include <numbers>
#include <string_view>

namespace gepeto::geo {

inline constexpr double kEarthRadiusMeters = 6371000.8;

/// Degrees-to-radians factor. Shared by distance.cc and the batch kernels
/// (kernels.cc): both must fold coordinates through the *same* constant for
/// the batched paths to stay bit-identical to the scalar formulas.
inline constexpr double kDegToRad = std::numbers::pi / 180.0;

/// Great-circle distance in meters (Sinnott's haversine formulation).
double haversine_meters(double lat1, double lon1, double lat2, double lon2);

/// Squared Euclidean distance over decimal degrees (dimension-by-dimension,
/// no square root — faster, preserves the order relation of Euclidean).
double squared_euclidean_deg(double lat1, double lon1, double lat2, double lon2);

/// Euclidean distance over decimal degrees.
double euclidean_deg(double lat1, double lon1, double lat2, double lon2);

/// Manhattan (L1) distance over decimal degrees.
double manhattan_deg(double lat1, double lon1, double lat2, double lon2);

/// Fast local approximation of metric distance (equirectangular projection
/// around the first point); used where meters matter but full haversine
/// would dominate (speed filtering, neighborhood radii at city scale).
double equirectangular_meters(double lat1, double lon1, double lat2,
                              double lon2);

/// The metric selector exposed in GEPETO job arguments ("distanceMeasure").
enum class DistanceKind {
  kSquaredEuclidean,
  kEuclidean,
  kManhattan,
  kHaversine,
};

/// Evaluate the selected metric. Haversine returns meters; the degree-based
/// metrics return degree-space values — callers compare like with like.
double distance(DistanceKind kind, double lat1, double lon1, double lat2,
                double lon2);

/// Name used in runtime arguments and bench tables.
std::string_view distance_name(DistanceKind kind);

/// Parse a runtime-argument name; throws CheckFailure on unknown names.
DistanceKind distance_from_name(std::string_view name);

}  // namespace gepeto::geo
