// Batched distance kernels (see kernels.h for the backend and bit-identity
// contract, DESIGN.md §14 for the design).
//
// Layout choice: SIMD kernels put POINTS in vector lanes and scan centroids
// in index order, broadcasting one centroid per step. Each lane therefore
// executes exactly the scalar per-point algorithm — the argmin blend uses a
// strict < compare, so the first (lowest-index) centroid achieving the
// minimum key wins in every lane, and no cross-lane reduction (the classic
// source of tie-break reordering) exists at all. Remainder points (n % lane
// count) run through the same scalar per-point helpers the kScalar backend
// uses, so tails are bit-identical by construction.
//
// This file must be compiled with -ffp-contract=off (set in
// src/geo/CMakeLists.txt): a fused multiply-add in the scalar kernels would
// produce differently-rounded keys than the explicit _mm256_mul_pd /
// _mm256_add_pd sequences, breaking the scalar<->SIMD bit-identity contract.
// The AVX2 target attribute deliberately does NOT enable "fma" for the same
// reason.
#include "geo/kernels.h"

#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/check.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define GEPETO_KERNELS_X86 1
#else
#define GEPETO_KERNELS_X86 0
#endif

namespace gepeto::geo {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- backend / level selection -----------------------------------------------

KernelBackend backend_from_env() {
  const char* env = std::getenv("GEPETO_KERNEL");
  if (env == nullptr || *env == '\0') return KernelBackend::kSimd;
  const std::string_view name(env);
  if (name == "legacy") return KernelBackend::kLegacy;
  if (name == "scalar") return KernelBackend::kScalar;
  if (name == "simd") return KernelBackend::kSimd;
  GEPETO_CHECK_MSG(false,
                   "GEPETO_KERNEL must be legacy|scalar|simd, got: " << name);
}

KernelBackend& backend_slot() {
  static KernelBackend backend = backend_from_env();
  return backend;
}

SimdLevel detect_simd_level() {
#if GEPETO_KERNELS_X86
  // SSE2 is part of the x86-64 baseline; AVX2 needs a CPUID check.
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  return SimdLevel::kSse2;
#else
  return SimdLevel::kScalarFallback;
#endif
}

SimdLevel& level_slot() {
  static SimdLevel level = detect_simd_level();
  return level;
}

// --- scalar per-point helpers ------------------------------------------------
// Used by the kScalar backend for every point and by the SIMD kernels for
// remainder points, so tails are bit-identical by construction. Comparison
// keys are reduced monotone forms: squared distance for (squared) Euclidean,
// the haversine "a" term for great-circle (atan2(sqrt(a), sqrt(1-a)) is
// strictly increasing in a on [0, 1], so the argmin is unchanged and the
// expensive atan2 + 2 sqrt runs once per point, not once per pair).

struct BestKey {
  std::uint32_t index;
  double key;
};

BestKey best_sq_scalar(double lat, double lon, const double* clat,
                       const double* clon, std::size_t k) {
  std::uint32_t best = 0;
  double best_key = kInf;
  for (std::size_t i = 0; i < k; ++i) {
    const double dlat = clat[i] - lat;
    const double dlon = clon[i] - lon;
    const double d = dlat * dlat + dlon * dlon;
    if (d < best_key) {
      best_key = d;
      best = static_cast<std::uint32_t>(i);
    }
  }
  return {best, best_key};
}

BestKey best_manhattan_scalar(double lat, double lon, const double* clat,
                              const double* clon, std::size_t k) {
  std::uint32_t best = 0;
  double best_key = kInf;
  for (std::size_t i = 0; i < k; ++i) {
    const double d = std::fabs(clat[i] - lat) + std::fabs(clon[i] - lon);
    if (d < best_key) {
      best_key = d;
      best = static_cast<std::uint32_t>(i);
    }
  }
  return {best, best_key};
}

BestKey best_haversine_scalar(double lat, double lon, double cos1,
                              const double* clat, const double* clon,
                              const double* ccos, std::size_t k) {
  std::uint32_t best = 0;
  double best_key = kInf;
  for (std::size_t i = 0; i < k; ++i) {
    const double sdphi = std::sin(((clat[i] - lat) * kDegToRad) / 2.0);
    const double sdlam = std::sin(((clon[i] - lon) * kDegToRad) / 2.0);
    const double a = sdphi * sdphi + cos1 * ccos[i] * sdlam * sdlam;
    if (a < best_key) {
      best_key = a;
      best = static_cast<std::uint32_t>(i);
    }
  }
  return {best, best_key};
}

/// Winner key -> distance in the metric's own units, bit-identical to
/// geo::distance() for the winning pair. The kInf sentinel means no centroid
/// was selected (k == 0 or every key NaN); report
/// std::numeric_limits<double>::max(), the legacy loop's untouched
/// initializer. A selected key can never be kInf itself: strict < against a
/// kInf initializer rejects infinite keys.
double key_to_distance(DistanceKind kind, double key) {
  if (key == kInf) return std::numeric_limits<double>::max();
  switch (kind) {
    case DistanceKind::kSquaredEuclidean:
    case DistanceKind::kManhattan:
      return key;
    case DistanceKind::kEuclidean:
      return std::sqrt(key);
    case DistanceKind::kHaversine:
      return 2.0 * kEarthRadiusMeters *
             std::atan2(std::sqrt(key), std::sqrt(1.0 - key));
  }
  GEPETO_CHECK_MSG(false, "unknown DistanceKind");
}

// --- scalar batch kernels ----------------------------------------------------

void nearest_sq_scalar(const double* lats, const double* lons, std::size_t n,
                       const double* clat, const double* clon, std::size_t k,
                       std::uint32_t* out_index, double* out_key) {
  for (std::size_t p = 0; p < n; ++p) {
    const BestKey b = best_sq_scalar(lats[p], lons[p], clat, clon, k);
    out_index[p] = b.index;
    if (out_key != nullptr) out_key[p] = b.key;
  }
}

void nearest_manhattan_scalar(const double* lats, const double* lons,
                              std::size_t n, const double* clat,
                              const double* clon, std::size_t k,
                              std::uint32_t* out_index, double* out_key) {
  for (std::size_t p = 0; p < n; ++p) {
    const BestKey b = best_manhattan_scalar(lats[p], lons[p], clat, clon, k);
    out_index[p] = b.index;
    if (out_key != nullptr) out_key[p] = b.key;
  }
}

void nearest_haversine_scalar(const double* lats, const double* lons,
                              std::size_t n, const double* clat,
                              const double* clon, const double* ccos,
                              std::size_t k, std::uint32_t* out_index,
                              double* out_key) {
  for (std::size_t p = 0; p < n; ++p) {
    const double cos1 = std::cos(lats[p] * kDegToRad);
    const BestKey b =
        best_haversine_scalar(lats[p], lons[p], cos1, clat, clon, ccos, k);
    out_index[p] = b.index;
    if (out_key != nullptr) out_key[p] = b.key;
  }
}

double equirect_one(double lat1, double lon1, double cos1, double lat2,
                    double lon2) {
  const double x = (lon2 - lon1) * kDegToRad * cos1;
  const double y = (lat2 - lat1) * kDegToRad;
  return std::sqrt(x * x + y * y) * kEarthRadiusMeters;
}

#if GEPETO_KERNELS_X86

// --- SSE2 kernels (x86-64 baseline, no target attribute needed) --------------

/// SSE2 has no BLENDVPD; and/andnot/or on the compare mask is exact.
__m128d blendv_sse2(__m128d a, __m128d b, __m128d mask) {
  return _mm_or_pd(_mm_and_pd(mask, b), _mm_andnot_pd(mask, a));
}

void store_lanes_sse2(__m128d best, __m128d best_idx, std::uint32_t* out_index,
                      double* out_key) {
  alignas(16) double idx[2];
  _mm_store_pd(idx, best_idx);
  out_index[0] = static_cast<std::uint32_t>(idx[0]);
  out_index[1] = static_cast<std::uint32_t>(idx[1]);
  if (out_key != nullptr) _mm_storeu_pd(out_key, best);
}

void nearest_sq_sse2(const double* lats, const double* lons, std::size_t n,
                     const double* clat, const double* clon, std::size_t k,
                     std::uint32_t* out_index, double* out_key) {
  std::size_t p = 0;
  for (; p + 2 <= n; p += 2) {
    const __m128d plat = _mm_loadu_pd(lats + p);
    const __m128d plon = _mm_loadu_pd(lons + p);
    __m128d best = _mm_set1_pd(kInf);
    __m128d best_idx = _mm_setzero_pd();
    for (std::size_t i = 0; i < k; ++i) {
      const __m128d dlat = _mm_sub_pd(_mm_set1_pd(clat[i]), plat);
      const __m128d dlon = _mm_sub_pd(_mm_set1_pd(clon[i]), plon);
      const __m128d d =
          _mm_add_pd(_mm_mul_pd(dlat, dlat), _mm_mul_pd(dlon, dlon));
      const __m128d lt = _mm_cmplt_pd(d, best);
      best = blendv_sse2(best, d, lt);
      best_idx =
          blendv_sse2(best_idx, _mm_set1_pd(static_cast<double>(i)), lt);
    }
    store_lanes_sse2(best, best_idx, out_index + p,
                     out_key != nullptr ? out_key + p : nullptr);
  }
  nearest_sq_scalar(lats + p, lons + p, n - p, clat, clon, k, out_index + p,
                    out_key != nullptr ? out_key + p : nullptr);
}

void nearest_manhattan_sse2(const double* lats, const double* lons,
                            std::size_t n, const double* clat,
                            const double* clon, std::size_t k,
                            std::uint32_t* out_index, double* out_key) {
  const __m128d sign = _mm_set1_pd(-0.0);
  std::size_t p = 0;
  for (; p + 2 <= n; p += 2) {
    const __m128d plat = _mm_loadu_pd(lats + p);
    const __m128d plon = _mm_loadu_pd(lons + p);
    __m128d best = _mm_set1_pd(kInf);
    __m128d best_idx = _mm_setzero_pd();
    for (std::size_t i = 0; i < k; ++i) {
      const __m128d dlat =
          _mm_andnot_pd(sign, _mm_sub_pd(_mm_set1_pd(clat[i]), plat));
      const __m128d dlon =
          _mm_andnot_pd(sign, _mm_sub_pd(_mm_set1_pd(clon[i]), plon));
      const __m128d d = _mm_add_pd(dlat, dlon);
      const __m128d lt = _mm_cmplt_pd(d, best);
      best = blendv_sse2(best, d, lt);
      best_idx =
          blendv_sse2(best_idx, _mm_set1_pd(static_cast<double>(i)), lt);
    }
    store_lanes_sse2(best, best_idx, out_index + p,
                     out_key != nullptr ? out_key + p : nullptr);
  }
  nearest_manhattan_scalar(lats + p, lons + p, n - p, clat, clon, k,
                           out_index + p,
                           out_key != nullptr ? out_key + p : nullptr);
}

void equirect_batch_sse2(double lat1, double lon1, const double* lats2,
                         const double* lons2, std::size_t n, double* out) {
  const double cos1 = std::cos(lat1 * kDegToRad);
  const __m128d cos1v = _mm_set1_pd(cos1);
  const __m128d lat1v = _mm_set1_pd(lat1);
  const __m128d lon1v = _mm_set1_pd(lon1);
  const __m128d degv = _mm_set1_pd(kDegToRad);
  const __m128d radiusv = _mm_set1_pd(kEarthRadiusMeters);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d x = _mm_mul_pd(
        _mm_mul_pd(_mm_sub_pd(_mm_loadu_pd(lons2 + i), lon1v), degv), cos1v);
    const __m128d y =
        _mm_mul_pd(_mm_sub_pd(_mm_loadu_pd(lats2 + i), lat1v), degv);
    const __m128d d =
        _mm_sqrt_pd(_mm_add_pd(_mm_mul_pd(x, x), _mm_mul_pd(y, y)));
    _mm_storeu_pd(out + i, _mm_mul_pd(d, radiusv));
  }
  for (; i < n; ++i)
    out[i] = equirect_one(lat1, lon1, cos1, lats2[i], lons2[i]);
}

// --- AVX2 kernels (runtime-dispatched; target attribute, deliberately no
// "fma" — see the file comment) ----------------------------------------------
//
// Every AVX2 kernel ends with an explicit _mm256_zeroupper() before running
// its scalar remainder tail / returning. GCC only auto-inserts vzeroupper
// ahead of calls it can see (the libm calls inside the haversine lane loop);
// the leaf kernels would otherwise return with dirty upper YMM state, and
// dirty uppers make every subsequent SSE instruction in the process pay the
// AVX-SSE transition penalty — measured ~26x on scalar libm sin/cos, i.e.
// one batch of squared-Euclidean SIMD would poison every haversine call
// made afterwards anywhere in the program.

__attribute__((target("avx2"))) void store_lanes_avx2(
    __m256d best, __m256d best_idx, std::uint32_t* out_index,
    double* out_key) {
  alignas(32) double idx[4];
  _mm256_store_pd(idx, best_idx);
  for (int j = 0; j < 4; ++j)
    out_index[j] = static_cast<std::uint32_t>(idx[j]);
  if (out_key != nullptr) _mm256_storeu_pd(out_key, best);
}

__attribute__((target("avx2"))) void nearest_sq_avx2(
    const double* lats, const double* lons, std::size_t n, const double* clat,
    const double* clon, std::size_t k, std::uint32_t* out_index,
    double* out_key) {
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    const __m256d plat = _mm256_loadu_pd(lats + p);
    const __m256d plon = _mm256_loadu_pd(lons + p);
    __m256d best = _mm256_set1_pd(kInf);
    __m256d best_idx = _mm256_setzero_pd();
    for (std::size_t i = 0; i < k; ++i) {
      const __m256d dlat = _mm256_sub_pd(_mm256_set1_pd(clat[i]), plat);
      const __m256d dlon = _mm256_sub_pd(_mm256_set1_pd(clon[i]), plon);
      const __m256d d = _mm256_add_pd(_mm256_mul_pd(dlat, dlat),
                                      _mm256_mul_pd(dlon, dlon));
      const __m256d lt = _mm256_cmp_pd(d, best, _CMP_LT_OQ);
      best = _mm256_blendv_pd(best, d, lt);
      best_idx = _mm256_blendv_pd(best_idx,
                                  _mm256_set1_pd(static_cast<double>(i)), lt);
    }
    store_lanes_avx2(best, best_idx, out_index + p,
                     out_key != nullptr ? out_key + p : nullptr);
  }
  _mm256_zeroupper();
  nearest_sq_scalar(lats + p, lons + p, n - p, clat, clon, k, out_index + p,
                    out_key != nullptr ? out_key + p : nullptr);
}

__attribute__((target("avx2"))) void nearest_manhattan_avx2(
    const double* lats, const double* lons, std::size_t n, const double* clat,
    const double* clon, std::size_t k, std::uint32_t* out_index,
    double* out_key) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  std::size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    const __m256d plat = _mm256_loadu_pd(lats + p);
    const __m256d plon = _mm256_loadu_pd(lons + p);
    __m256d best = _mm256_set1_pd(kInf);
    __m256d best_idx = _mm256_setzero_pd();
    for (std::size_t i = 0; i < k; ++i) {
      const __m256d dlat = _mm256_andnot_pd(
          sign, _mm256_sub_pd(_mm256_set1_pd(clat[i]), plat));
      const __m256d dlon = _mm256_andnot_pd(
          sign, _mm256_sub_pd(_mm256_set1_pd(clon[i]), plon));
      const __m256d d = _mm256_add_pd(dlat, dlon);
      const __m256d lt = _mm256_cmp_pd(d, best, _CMP_LT_OQ);
      best = _mm256_blendv_pd(best, d, lt);
      best_idx = _mm256_blendv_pd(best_idx,
                                  _mm256_set1_pd(static_cast<double>(i)), lt);
    }
    store_lanes_avx2(best, best_idx, out_index + p,
                     out_key != nullptr ? out_key + p : nullptr);
  }
  _mm256_zeroupper();
  nearest_manhattan_scalar(lats + p, lons + p, n - p, clat, clon, k,
                           out_index + p,
                           out_key != nullptr ? out_key + p : nullptr);
}

__attribute__((target("avx2"))) void equirect_batch_avx2(
    double lat1, double lon1, const double* lats2, const double* lons2,
    std::size_t n, double* out) {
  const double cos1 = std::cos(lat1 * kDegToRad);
  const __m256d cos1v = _mm256_set1_pd(cos1);
  const __m256d lat1v = _mm256_set1_pd(lat1);
  const __m256d lon1v = _mm256_set1_pd(lon1);
  const __m256d degv = _mm256_set1_pd(kDegToRad);
  const __m256d radiusv = _mm256_set1_pd(kEarthRadiusMeters);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_mul_pd(
        _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(lons2 + i), lon1v), degv),
        cos1v);
    const __m256d y =
        _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(lats2 + i), lat1v), degv);
    const __m256d d =
        _mm256_sqrt_pd(_mm256_add_pd(_mm256_mul_pd(x, x), _mm256_mul_pd(y, y)));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(d, radiusv));
  }
  _mm256_zeroupper();
  for (; i < n; ++i)
    out[i] = equirect_one(lat1, lon1, cos1, lats2[i], lons2[i]);
}

#endif  // GEPETO_KERNELS_X86

// --- dispatch ----------------------------------------------------------------

void nearest_sq(bool simd, const double* lats, const double* lons,
                std::size_t n, const double* clat, const double* clon,
                std::size_t k, std::uint32_t* out_index, double* out_key) {
#if GEPETO_KERNELS_X86
  if (simd) {
    const SimdLevel level = simd_level();
    if (level == SimdLevel::kAvx2) {
      nearest_sq_avx2(lats, lons, n, clat, clon, k, out_index, out_key);
      return;
    }
    if (level == SimdLevel::kSse2) {
      nearest_sq_sse2(lats, lons, n, clat, clon, k, out_index, out_key);
      return;
    }
  }
#else
  (void)simd;
#endif
  nearest_sq_scalar(lats, lons, n, clat, clon, k, out_index, out_key);
}

void nearest_manhattan(bool simd, const double* lats, const double* lons,
                       std::size_t n, const double* clat, const double* clon,
                       std::size_t k, std::uint32_t* out_index,
                       double* out_key) {
#if GEPETO_KERNELS_X86
  if (simd) {
    const SimdLevel level = simd_level();
    if (level == SimdLevel::kAvx2) {
      nearest_manhattan_avx2(lats, lons, n, clat, clon, k, out_index, out_key);
      return;
    }
    if (level == SimdLevel::kSse2) {
      nearest_manhattan_sse2(lats, lons, n, clat, clon, k, out_index, out_key);
      return;
    }
  }
#else
  (void)simd;
#endif
  nearest_manhattan_scalar(lats, lons, n, clat, clon, k, out_index, out_key);
}

// The haversine argmin deliberately has NO vector variant: the per-pair cost
// is the two libm sin calls, which have no vector form here, and wrapping
// scalar sin calls in vector compare/blend assembly measured *slower* than
// the plain scalar batch kernel (the compiler must vzeroupper around every
// lane's libm call). kSimd therefore dispatches haversine to the scalar
// batch kernel — the win over legacy (~4x) comes from the reduced "a"-term
// key (no atan2/sqrt per pair), the hoisted dispatch, and the precomputed
// per-centroid cos(lat), all of which the scalar batch kernel already has.
void nearest_haversine(bool simd, const double* lats, const double* lons,
                       std::size_t n, const double* clat, const double* clon,
                       const double* ccos, std::size_t k,
                       std::uint32_t* out_index, double* out_key) {
  (void)simd;
  nearest_haversine_scalar(lats, lons, n, clat, clon, ccos, k, out_index,
                           out_key);
}

}  // namespace

KernelBackend kernel_backend() { return backend_slot(); }

void set_kernel_backend_for_testing(KernelBackend backend) {
  backend_slot() = backend;
}

std::string_view kernel_backend_name(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kLegacy: return "legacy";
    case KernelBackend::kScalar: return "scalar";
    case KernelBackend::kSimd: return "simd";
  }
  return "?";
}

SimdLevel simd_level() { return level_slot(); }

void set_simd_level_for_testing(SimdLevel level) {
  GEPETO_CHECK_MSG(level <= detect_simd_level(),
                   "cannot force a SIMD level above what this CPU supports");
  level_slot() = level;
}

std::string_view simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalarFallback: return "scalar-fallback";
    case SimdLevel::kSse2: return "sse2";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "?";
}

CentroidKernel::CentroidKernel(DistanceKind kind, const double* centroid_lats,
                               const double* centroid_lons, std::size_t k)
    : kind_(kind),
      clat_(centroid_lats, centroid_lats + k),
      clon_(centroid_lons, centroid_lons + k) {
  if (kind_ == DistanceKind::kHaversine) {
    ccos_.resize(k);
    for (std::size_t i = 0; i < k; ++i)
      ccos_[i] = std::cos(clat_[i] * kDegToRad);
  }
}

void CentroidKernel::nearest(const double* lats, const double* lons,
                             std::size_t n, std::uint32_t* out_index,
                             double* out_distance) const {
  const std::size_t k = clat_.size();
  const KernelBackend backend = kernel_backend();
  if (backend == KernelBackend::kLegacy) {
    // The pre-kernel code path, verbatim: per-pair geo::distance() with the
    // full formula, keep-first strict < argmin. Kept measurable for benches.
    for (std::size_t p = 0; p < n; ++p) {
      std::uint32_t best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (std::size_t i = 0; i < k; ++i) {
        const double d = distance(kind_, lats[p], lons[p], clat_[i], clon_[i]);
        if (d < best_d) {
          best_d = d;
          best = static_cast<std::uint32_t>(i);
        }
      }
      out_index[p] = best;
      if (out_distance != nullptr) out_distance[p] = best_d;
    }
    return;
  }

  // Reduced-key argmin; keys land in out_distance (when requested) and are
  // transformed to metric units afterwards, once per point.
  const bool simd = backend == KernelBackend::kSimd;
  switch (kind_) {
    case DistanceKind::kSquaredEuclidean:
    case DistanceKind::kEuclidean:
      nearest_sq(simd, lats, lons, n, clat_.data(), clon_.data(), k, out_index,
                 out_distance);
      break;
    case DistanceKind::kManhattan:
      nearest_manhattan(simd, lats, lons, n, clat_.data(), clon_.data(), k,
                        out_index, out_distance);
      break;
    case DistanceKind::kHaversine:
      nearest_haversine(simd, lats, lons, n, clat_.data(), clon_.data(),
                        ccos_.data(), k, out_index, out_distance);
      break;
  }
  if (out_distance != nullptr) {
    for (std::size_t p = 0; p < n; ++p)
      out_distance[p] = key_to_distance(kind_, out_distance[p]);
  }
}

void haversine_meters_batch(double lat1, double lon1, const double* lats2,
                            const double* lons2, std::size_t n, double* out) {
  if (kernel_backend() == KernelBackend::kLegacy) {
    for (std::size_t i = 0; i < n; ++i)
      out[i] = haversine_meters(lat1, lon1, lats2[i], lons2[i]);
    return;
  }
  // cos(phi1) hoisted; everything else is the haversine_meters() op sequence
  // verbatim, so each out[i] is bit-identical to the scalar call.
  const double cos1 = std::cos(lat1 * kDegToRad);
  for (std::size_t i = 0; i < n; ++i) {
    const double sdphi = std::sin(((lats2[i] - lat1) * kDegToRad) / 2.0);
    const double sdlambda = std::sin(((lons2[i] - lon1) * kDegToRad) / 2.0);
    const double a = sdphi * sdphi +
                     cos1 * std::cos(lats2[i] * kDegToRad) * sdlambda * sdlambda;
    out[i] = 2.0 * kEarthRadiusMeters *
             std::atan2(std::sqrt(a), std::sqrt(1.0 - a));
  }
}

void equirectangular_meters_batch(double lat1, double lon1,
                                  const double* lats2, const double* lons2,
                                  std::size_t n, double* out) {
  const KernelBackend backend = kernel_backend();
  if (backend == KernelBackend::kLegacy) {
    for (std::size_t i = 0; i < n; ++i)
      out[i] = equirectangular_meters(lat1, lon1, lats2[i], lons2[i]);
    return;
  }
#if GEPETO_KERNELS_X86
  if (backend == KernelBackend::kSimd) {
    const SimdLevel level = simd_level();
    if (level == SimdLevel::kAvx2) {
      equirect_batch_avx2(lat1, lon1, lats2, lons2, n, out);
      return;
    }
    if (level == SimdLevel::kSse2) {
      equirect_batch_sse2(lat1, lon1, lats2, lons2, n, out);
      return;
    }
  }
#endif
  const double cos1 = std::cos(lat1 * kDegToRad);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = equirect_one(lat1, lon1, cos1, lats2[i], lons2[i]);
}

}  // namespace gepeto::geo
