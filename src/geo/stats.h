// Descriptive statistics over geolocated datasets — GEPETO's "measure the
// utility of a particular geolocated dataset" entry point, and the numbers
// quoted in bench headers (trace counts, densities, spans).
#pragma once

#include <cstdint>
#include <string>

#include "geo/trace.h"

namespace gepeto::geo {

struct DatasetStats {
  std::size_t num_users = 0;
  std::uint64_t num_traces = 0;
  double avg_traces_per_user = 0.0;
  std::int64_t earliest = 0;
  std::int64_t latest = 0;
  double min_latitude = 0.0, max_latitude = 0.0;
  double min_longitude = 0.0, max_longitude = 0.0;
  /// Median inter-sample gap (seconds) within trails, ignoring gaps over
  /// 10 minutes (session boundaries) — GeoLife's is 1-5 s.
  double median_sample_period_s = 0.0;
  /// Total distance travelled (sum of consecutive-trace hops), km.
  double total_distance_km = 0.0;
};

DatasetStats compute_stats(const GeolocatedDataset& dataset);

/// Multi-line human-readable rendering for README/bench headers.
std::string describe(const DatasetStats& stats);

}  // namespace gepeto::geo
