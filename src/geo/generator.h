// Synthetic GeoLife-like dataset generator with ground truth.
//
// The paper evaluates on the GeoLife GPS trajectories (178 users, collected
// 2007-2012 by Microsoft Research Asia, mostly in Beijing; ~18,000
// trajectories averaging ~110 traces each; "a mobility trace is recorded
// every 1 to 5 seconds or every 5 to 10 meters"). That dataset is not
// redistributable here, so we generate a synthetic equivalent reproducing
// the properties the paper's experiments depend on:
//
//   * many *short trajectories* per user (a few minutes of dense logging,
//     several per day) — trajectory length vs window size is what produces
//     Table I's reduction cascade (13x at 1 min, 49x at 5 min, 86x at
//     10 min: a 5-10-minute trajectory spans many 1-minute windows but only
//     one or two 10-minute windows);
//   * in-trajectory sampling every few seconds (we draw 3-5 s — GeoLife's
//     nominal 1-5 s combined with its 5-10 m distance trigger yields the
//     same effective spacing);
//   * a mix of dwelling at points of interest and travelling between them
//     at street speeds, with some trajectories starting mid-trip — this
//     drives the ~56% stationary share of the DJ-Cluster preprocessing
//     phase (Table IV);
//   * per-user mobility following a Mobility Markov Chain over a small set
//     of POIs (home, work, leisure places) — giving the clustering
//     algorithms real structure and the inference-attack evaluation a
//     ground truth.
//
// Generation is fully deterministic given the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/trace.h"

namespace gepeto::geo {

enum class PoiKind { kHome, kWork, kLeisure };

/// A ground-truth point of interest of one synthetic user.
struct Poi {
  double latitude = 0.0;
  double longitude = 0.0;
  PoiKind kind = PoiKind::kLeisure;
};

/// Ground truth retained per user for evaluating inference attacks.
struct UserProfile {
  std::int32_t user_id = 0;
  std::vector<Poi> pois;  ///< [0] = home, [1] = work, rest leisure
  /// Row-stochastic transition matrix of the generating Mobility Markov
  /// Chain (indexed by POI position in `pois`).
  std::vector<std::vector<double>> transitions;
};

struct GeneratorConfig {
  int num_users = 178;

  /// Observation period.
  std::int64_t start_time = 1222819200;  ///< 2008-10-01 00:00:00 UTC
  int duration_days = 60;

  /// GPS trajectories per user over the period (GeoLife: ~100/user in the
  /// evaluated subsets), each a short burst of dense logging.
  int trajectories_per_user_min = 70;
  int trajectories_per_user_max = 120;
  double trajectory_minutes_min = 3.0;
  double trajectory_minutes_max = 15.0;
  /// Minimum silent gap between two trajectories of a user (seconds).
  int trajectory_gap_s = 600;

  /// Fraction of trajectories that start in the middle of a trip rather
  /// than dwelling at a POI (tunes Table IV's stationary/moving mix).
  double travel_start_prob = 0.40;

  /// The synthetic city (defaults: central Beijing, like GeoLife).
  double city_latitude = 39.9042;
  double city_longitude = 116.4074;
  double city_radius_km = 12.0;

  int leisure_pois_min = 2;
  int leisure_pois_max = 6;

  /// Dwell/travel behaviour.
  double dwell_minutes_min = 3.0;
  double dwell_minutes_max = 15.0;
  double speed_kmh_min = 12.0;
  double speed_kmh_max = 45.0;

  /// In-trajectory sampling period, drawn once per trajectory from
  /// [min,max] whole seconds.
  int sample_period_min_s = 3;
  int sample_period_max_s = 5;

  /// GPS noise (stationary std of each coordinate, meters; AR(1) drift).
  double gps_noise_m = 3.0;

  /// Social structure: each user gets this many friends (ring topology over
  /// user ids). Friend pairs share one leisure POI and co-visit it: when
  /// both are logging, meetings there overlap in time — the signal the
  /// social-link discovery attack (Section II) looks for. 0 disables it.
  int friends_per_user = 0;
  /// Probability that a trajectory of a user with friends is redirected to
  /// start a meeting at a shared POI.
  double meeting_prob = 0.25;

  std::uint64_t seed = 2013;
};

struct SyntheticDataset {
  GeolocatedDataset data;
  std::vector<UserProfile> profiles;  ///< index i = user id i
  /// Ground-truth friendships (a < b), present when friends_per_user > 0.
  std::vector<std::pair<std::int32_t, std::int32_t>> friendships;
};

/// Generate the dataset. Deterministic: same config -> identical output.
SyntheticDataset generate_dataset(const GeneratorConfig& config);

/// Convenience: a config scaled so that the expected trace count is roughly
/// `target_traces` with `num_users` users, keeping all behavioural knobs at
/// their defaults (used by benches to hit the paper's 1.05 M / 2.03 M sizes).
GeneratorConfig scaled_config(int num_users, std::uint64_t target_traces,
                              std::uint64_t seed = 2013);

}  // namespace gepeto::geo
