#include "geo/generator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "common/check.h"
#include "common/random.h"
#include "geo/distance.h"
#include "geo/time.h"

namespace gepeto::geo {

namespace {

constexpr double kMetersPerDegLat = 111320.0;

double meters_to_deg_lat(double m) { return m / kMetersPerDegLat; }

double meters_to_deg_lon(double m, double at_lat) {
  return m / (kMetersPerDegLat *
              std::cos(at_lat * std::numbers::pi / 180.0));
}

/// Uniform point in a disk of `radius_km` around the city center.
Poi random_poi(Rng& rng, const GeneratorConfig& cfg, PoiKind kind) {
  const double r_m = cfg.city_radius_km * 1000.0 * std::sqrt(rng.uniform());
  const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
  Poi p;
  p.kind = kind;
  p.latitude = cfg.city_latitude + meters_to_deg_lat(r_m * std::sin(theta));
  p.longitude =
      cfg.city_longitude + meters_to_deg_lon(r_m * std::cos(theta),
                                             cfg.city_latitude);
  return p;
}

/// Ground-truth MMC rows: home <-> work dominate, leisure in between.
std::vector<std::vector<double>> make_transitions(std::size_t num_pois) {
  GEPETO_CHECK(num_pois >= 2);
  const std::size_t leisure = num_pois - 2;
  std::vector<std::vector<double>> m(num_pois,
                                     std::vector<double>(num_pois, 0.0));
  // Row 0: home.
  m[0][1] = leisure > 0 ? 0.55 : 1.0;
  for (std::size_t j = 2; j < num_pois; ++j)
    m[0][j] = 0.45 / static_cast<double>(leisure);
  // Row 1: work.
  m[1][0] = leisure > 0 ? 0.60 : 1.0;
  for (std::size_t j = 2; j < num_pois; ++j)
    m[1][j] = 0.40 / static_cast<double>(leisure);
  // Leisure rows.
  for (std::size_t i = 2; i < num_pois; ++i) {
    if (leisure > 1) {
      m[i][0] = 0.50;
      m[i][1] = 0.20;
      for (std::size_t j = 2; j < num_pois; ++j)
        if (j != i) m[i][j] = 0.30 / static_cast<double>(leisure - 1);
    } else {
      m[i][0] = 0.70;
      m[i][1] = 0.30;
    }
  }
  return m;
}

/// Non-overlapping trajectory windows over the observation period. Like the
/// real GeoLife logs, trajectories cluster into *active days*: a user logs
/// several trajectories in a day, separated by gaps of tens of minutes to a
/// couple of hours (commute legs, errands). Those short gaps matter: after
/// coarse down-sampling, the speed filter sees the km-scale displacement
/// between two nearby-in-time trajectories and classifies the boundary
/// traces as moving — the effect behind Table IV's 5/10-minute rows.
std::vector<std::pair<std::int64_t, std::int64_t>> plan_trajectories(
    Rng& rng, const GeneratorConfig& cfg, int count) {
  constexpr int kTrajectoriesPerActiveDay = 3;
  const int active_days =
      std::min(cfg.duration_days,
               (count + kTrajectoriesPerActiveDay - 1) /
                   kTrajectoriesPerActiveDay);

  // Distinct active days (partial Fisher-Yates), sorted.
  std::vector<int> days(static_cast<std::size_t>(cfg.duration_days));
  for (int i = 0; i < cfg.duration_days; ++i)
    days[static_cast<std::size_t>(i)] = i;
  for (int i = 0; i < active_days; ++i) {
    const auto j =
        static_cast<std::size_t>(rng.uniform_int(i, cfg.duration_days - 1));
    std::swap(days[static_cast<std::size_t>(i)], days[j]);
  }
  days.resize(static_cast<std::size_t>(active_days));
  std::sort(days.begin(), days.end());

  std::vector<std::pair<std::int64_t, std::int64_t>> plan;  // (start, end)
  plan.reserve(static_cast<std::size_t>(count));
  int remaining = count;
  for (std::size_t d = 0; d < days.size() && remaining > 0; ++d) {
    // Spread the remaining quota over the remaining days.
    const int today = std::min(
        remaining,
        static_cast<int>(rng.uniform_int(kTrajectoriesPerActiveDay - 1,
                                         kTrajectoriesPerActiveDay + 1)));
    // First trajectory of the day anywhere between early morning and late
    // evening; chains may spill past midnight (night logging is what lets
    // the home-identification attack see people at home).
    std::int64_t t = cfg.start_time +
                     static_cast<std::int64_t>(days[d]) * 86400 +
                     rng.uniform_int(7 * 3600, 22 * 3600);
    const std::int64_t day_end =
        cfg.start_time + static_cast<std::int64_t>(days[d]) * 86400 +
        26 * 3600;
    for (int i = 0; i < today && t < day_end; ++i) {
      const double minutes =
          rng.uniform(cfg.trajectory_minutes_min, cfg.trajectory_minutes_max);
      const std::int64_t end = t + static_cast<std::int64_t>(minutes * 60.0);
      plan.emplace_back(t, end);
      --remaining;
      // Next trajectory after a short off-logger gap.
      t = end + cfg.trajectory_gap_s +
          static_cast<std::int64_t>(rng.exponential(2400.0));
    }
  }
  return plan;
}

struct NoiseState {
  double lat_m = 0.0;
  double lon_m = 0.0;
};

void emit_sample(Trail& trail, Rng& rng, const GeneratorConfig& cfg,
                 std::int32_t uid, double lat, double lon, std::int64_t ts,
                 NoiseState& noise) {
  // GPS noise is strongly autocorrelated between consecutive fixes: an
  // AR(1) drift per axis (stationary std = gps_noise_m), so a dwelling
  // receiver wanders slowly instead of jumping by the full amplitude.
  constexpr double kNoisePhi = 0.95;
  const double step =
      cfg.gps_noise_m * std::sqrt(1.0 - kNoisePhi * kNoisePhi);
  noise.lat_m = kNoisePhi * noise.lat_m + rng.gaussian(0.0, step);
  noise.lon_m = kNoisePhi * noise.lon_m + rng.gaussian(0.0, step);
  MobilityTrace t;
  t.user_id = uid;
  t.latitude = lat + meters_to_deg_lat(noise.lat_m);
  t.longitude = lon + meters_to_deg_lon(noise.lon_m, cfg.city_latitude);
  t.altitude_ft = 150.0 + rng.gaussian(0.0, 8.0);  // plain-city altitude
  t.timestamp = ts;
  trail.push_back(t);
}

/// POI a trajectory starts from, chosen by time of day (people are home at
/// night, at work during weekday office hours).
std::size_t initial_poi(Rng& rng, std::int64_t start, std::size_t num_pois) {
  const int sod = seconds_of_day(start);
  const int dow = day_of_week(start);
  const bool night = sod < 8 * 3600 || sod >= 21 * 3600;
  const bool office = dow < 5 && sod >= 9 * 3600 && sod < 17 * 3600;
  if (night) return 0;
  if (office && rng.chance(0.7)) return 1;
  if (rng.chance(0.4)) return 0;
  if (num_pois > 2 && rng.chance(0.5))
    return 2 + rng.uniform_u64(num_pois - 2);
  return 1;
}

}  // namespace

namespace {

/// A scheduled co-visit of two friends at their shared POI.
struct Meeting {
  std::int64_t start = 0;
  std::int64_t end = 0;
  double latitude = 0.0;
  double longitude = 0.0;
};

/// Build the friendship graph (ring topology over user ids), shared POIs
/// and meeting schedules, all from a dedicated deterministic stream.
struct SocialPlan {
  std::vector<std::pair<std::int32_t, std::int32_t>> friendships;
  std::vector<Poi> shared_poi_of_user;             // flattened per-user extras
  std::vector<std::vector<Poi>> extra_pois;        // per user
  std::vector<std::vector<Meeting>> meetings;      // per user, time-sorted
};

SocialPlan plan_social(Rng& master, const GeneratorConfig& cfg) {
  SocialPlan plan;
  plan.extra_pois.resize(static_cast<std::size_t>(cfg.num_users));
  plan.meetings.resize(static_cast<std::size_t>(cfg.num_users));
  if (cfg.friends_per_user <= 0 || cfg.num_users < 2) return plan;

  Rng rng = master.fork(0x50C1A1);
  const int hops = std::min(cfg.friends_per_user, cfg.num_users - 1);
  for (std::int32_t u = 0; u < cfg.num_users; ++u) {
    for (int h = 1; h <= hops; ++h) {
      const std::int32_t v =
          static_cast<std::int32_t>((u + h) % cfg.num_users);
      const auto a = std::min(u, v);
      const auto b = std::max(u, v);
      if (std::find(plan.friendships.begin(), plan.friendships.end(),
                    std::make_pair(a, b)) != plan.friendships.end())
        continue;
      plan.friendships.emplace_back(a, b);

      const Poi shared = random_poi(rng, cfg, PoiKind::kLeisure);
      plan.extra_pois[static_cast<std::size_t>(a)].push_back(shared);
      plan.extra_pois[static_cast<std::size_t>(b)].push_back(shared);

      // Meetings: both users present over the same window.
      const int count = static_cast<int>(rng.uniform_int(3, 7));
      for (int m = 0; m < count; ++m) {
        Meeting meet;
        const auto day = rng.uniform_int(0, cfg.duration_days - 1);
        const auto sod = rng.uniform_int(10 * 3600, 21 * 3600);
        meet.start = cfg.start_time + day * 86400 + sod;
        meet.end = meet.start + rng.uniform_int(20 * 60, 60 * 60);
        meet.latitude = shared.latitude;
        meet.longitude = shared.longitude;
        plan.meetings[static_cast<std::size_t>(a)].push_back(meet);
        plan.meetings[static_cast<std::size_t>(b)].push_back(meet);
      }
    }
  }
  for (auto& m : plan.meetings)
    std::sort(m.begin(), m.end(), [](const Meeting& x, const Meeting& y) {
      return x.start < y.start;
    });
  return plan;
}

/// Drop windows that overlap any meeting of the user (meetings win).
std::vector<std::pair<std::int64_t, std::int64_t>> drop_overlapping(
    std::vector<std::pair<std::int64_t, std::int64_t>> windows,
    const std::vector<Meeting>& meetings) {
  if (meetings.empty()) return windows;
  std::erase_if(windows, [&](const auto& w) {
    for (const auto& m : meetings)
      if (w.first < m.end && m.start < w.second) return true;
    return false;
  });
  return windows;
}

}  // namespace

SyntheticDataset generate_dataset(const GeneratorConfig& cfg) {
  GEPETO_CHECK(cfg.num_users > 0);
  GEPETO_CHECK(cfg.duration_days > 0);
  GEPETO_CHECK(cfg.sample_period_min_s >= 1);
  GEPETO_CHECK(cfg.sample_period_max_s >= cfg.sample_period_min_s);
  GEPETO_CHECK(cfg.trajectory_minutes_min > 0 &&
               cfg.trajectory_minutes_max >= cfg.trajectory_minutes_min);
  GEPETO_CHECK(cfg.trajectories_per_user_min >= 1 &&
               cfg.trajectories_per_user_max >= cfg.trajectories_per_user_min);
  GEPETO_CHECK(cfg.travel_start_prob >= 0.0 && cfg.travel_start_prob <= 1.0);

  SyntheticDataset out;
  out.profiles.reserve(static_cast<std::size_t>(cfg.num_users));
  Rng master(cfg.seed);
  SocialPlan social = plan_social(master, cfg);
  out.friendships = social.friendships;

  for (std::int32_t uid = 0; uid < cfg.num_users; ++uid) {
    Rng rng = master.fork(static_cast<std::uint64_t>(uid) + 1);

    UserProfile profile;
    profile.user_id = uid;
    profile.pois.push_back(random_poi(rng, cfg, PoiKind::kHome));
    // Keep home and work a sensible commute apart (>= 1.5 km).
    for (;;) {
      Poi work = random_poi(rng, cfg, PoiKind::kWork);
      if (haversine_meters(profile.pois[0].latitude, profile.pois[0].longitude,
                           work.latitude, work.longitude) >= 1500.0) {
        profile.pois.push_back(work);
        break;
      }
    }
    const int leisure = static_cast<int>(
        rng.uniform_int(cfg.leisure_pois_min, cfg.leisure_pois_max));
    for (int i = 0; i < leisure; ++i)
      profile.pois.push_back(random_poi(rng, cfg, PoiKind::kLeisure));
    // Shared POIs from the social plan become regular leisure POIs of this
    // user (ground truth includes them).
    for (const auto& shared : social.extra_pois[static_cast<std::size_t>(uid)])
      profile.pois.push_back(shared);
    profile.transitions = make_transitions(profile.pois.size());

    Trail trail;
    // A user's meetings (from different friendships) may collide; keep the
    // earlier one of each overlapping pair so time segments stay disjoint.
    std::vector<Meeting> my_meetings;
    for (const auto& meet : social.meetings[static_cast<std::size_t>(uid)]) {
      if (my_meetings.empty() || meet.start >= my_meetings.back().end)
        my_meetings.push_back(meet);
    }
    // Meetings: both friends dwell at the shared POI over the same window.
    for (const auto& meet : my_meetings) {
      const int period = static_cast<int>(rng.uniform_int(
          cfg.sample_period_min_s, cfg.sample_period_max_s));
      NoiseState noise;
      for (std::int64_t now = meet.start; now < meet.end; now += period)
        emit_sample(trail, rng, cfg, uid, meet.latitude, meet.longitude, now,
                    noise);
    }

    const int trajectories = static_cast<int>(rng.uniform_int(
        cfg.trajectories_per_user_min, cfg.trajectories_per_user_max));
    for (const auto& [start, end] :
         drop_overlapping(plan_trajectories(rng, cfg, trajectories),
                          my_meetings)) {
      const int period = static_cast<int>(rng.uniform_int(
          cfg.sample_period_min_s, cfg.sample_period_max_s));
      NoiseState noise;
      std::int64_t now = start;
      std::size_t here = initial_poi(rng, start, profile.pois.size());

      // Optionally start the log in the middle of a trip.
      bool mid_travel = rng.chance(cfg.travel_start_prob);
      double travel_frac0 = mid_travel ? rng.uniform(0.1, 0.7) : 0.0;

      while (now < end) {
        if (!mid_travel) {
          // Dwell at the current POI.
          const double dwell_min =
              rng.uniform(cfg.dwell_minutes_min, cfg.dwell_minutes_max);
          const std::int64_t dwell_end =
              now + static_cast<std::int64_t>(dwell_min * 60.0);
          const Poi& poi = profile.pois[here];
          while (now < dwell_end && now < end) {
            emit_sample(trail, rng, cfg, uid, poi.latitude, poi.longitude,
                        now, noise);
            now += period;
          }
          if (now >= end) break;
        }

        // Travel to the next POI (MMC transition).
        const auto& row = profile.transitions[here];
        const std::size_t next = rng.weighted_pick(row.data(), row.size());
        const Poi& from = profile.pois[here];
        const Poi& to = profile.pois[next];
        const double dist_m =
            haversine_meters(from.latitude, from.longitude, to.latitude,
                             to.longitude);
        const double speed_ms =
            rng.uniform(cfg.speed_kmh_min, cfg.speed_kmh_max) / 3.6;
        const double leg_seconds = std::max(1.0, dist_m / speed_ms);
        // A mid-travel start skips the first part of the leg.
        double frac = mid_travel ? travel_frac0 : 0.0;
        mid_travel = false;
        const double frac_per_step =
            static_cast<double>(period) / leg_seconds;
        while (frac < 1.0 && now < end) {
          const double lat =
              from.latitude + frac * (to.latitude - from.latitude);
          const double lon =
              from.longitude + frac * (to.longitude - from.longitude);
          emit_sample(trail, rng, cfg, uid, lat, lon, now, noise);
          now += period;
          frac += frac_per_step;
        }
        here = next;
      }
    }
    // Meetings were emitted first; restore global time order (all segments
    // are disjoint in time, so the order is strict).
    std::sort(trail.begin(), trail.end(),
              [](const MobilityTrace& a, const MobilityTrace& b) {
                return a.timestamp < b.timestamp;
              });
    out.data.add_trail(uid, std::move(trail));
    out.profiles.push_back(std::move(profile));
  }
  return out;
}

GeneratorConfig scaled_config(int num_users, std::uint64_t target_traces,
                              std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.num_users = num_users;
  cfg.seed = seed;

  // Expected traces/user with the current knobs: trajectories x minutes x
  // 60 x E[1/period].
  const double avg_trajectories =
      0.5 * (cfg.trajectories_per_user_min + cfg.trajectories_per_user_max);
  const double avg_minutes =
      0.5 * (cfg.trajectory_minutes_min + cfg.trajectory_minutes_max);
  double inv_period = 0.0;
  for (int p = cfg.sample_period_min_s; p <= cfg.sample_period_max_s; ++p)
    inv_period += 1.0 / static_cast<double>(p);
  inv_period /= static_cast<double>(cfg.sample_period_max_s -
                                    cfg.sample_period_min_s + 1);
  const double expected = static_cast<double>(num_users) * avg_trajectories *
                          avg_minutes * 60.0 * inv_period;
  const double scale = static_cast<double>(target_traces) / expected;

  // Scale the trajectory count; lengths and behaviour stay GeoLife-like.
  cfg.trajectories_per_user_min = std::max(
      1, static_cast<int>(cfg.trajectories_per_user_min * scale));
  cfg.trajectories_per_user_max = std::max(
      cfg.trajectories_per_user_min,
      static_cast<int>(cfg.trajectories_per_user_max * scale));
  return cfg;
}

}  // namespace gepeto::geo
