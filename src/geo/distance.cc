#include "geo/distance.h"

#include <cmath>

#include "common/check.h"

namespace gepeto::geo {

double haversine_meters(double lat1, double lon1, double lat2, double lon2) {
  const double phi1 = lat1 * kDegToRad;
  const double phi2 = lat2 * kDegToRad;
  const double dphi = (lat2 - lat1) * kDegToRad;
  const double dlambda = (lon2 - lon1) * kDegToRad;
  const double sdphi = std::sin(dphi / 2.0);
  const double sdlambda = std::sin(dlambda / 2.0);
  const double a =
      sdphi * sdphi + std::cos(phi1) * std::cos(phi2) * sdlambda * sdlambda;
  return 2.0 * kEarthRadiusMeters *
         std::atan2(std::sqrt(a), std::sqrt(1.0 - a));
}

double squared_euclidean_deg(double lat1, double lon1, double lat2,
                             double lon2) {
  const double dlat = lat2 - lat1;
  const double dlon = lon2 - lon1;
  return dlat * dlat + dlon * dlon;
}

double euclidean_deg(double lat1, double lon1, double lat2, double lon2) {
  return std::sqrt(squared_euclidean_deg(lat1, lon1, lat2, lon2));
}

double manhattan_deg(double lat1, double lon1, double lat2, double lon2) {
  return std::fabs(lat2 - lat1) + std::fabs(lon2 - lon1);
}

double equirectangular_meters(double lat1, double lon1, double lat2,
                              double lon2) {
  const double x = (lon2 - lon1) * kDegToRad * std::cos(lat1 * kDegToRad);
  const double y = (lat2 - lat1) * kDegToRad;
  return std::sqrt(x * x + y * y) * kEarthRadiusMeters;
}

double distance(DistanceKind kind, double lat1, double lon1, double lat2,
                double lon2) {
  switch (kind) {
    case DistanceKind::kSquaredEuclidean:
      return squared_euclidean_deg(lat1, lon1, lat2, lon2);
    case DistanceKind::kEuclidean:
      return euclidean_deg(lat1, lon1, lat2, lon2);
    case DistanceKind::kManhattan:
      return manhattan_deg(lat1, lon1, lat2, lon2);
    case DistanceKind::kHaversine:
      return haversine_meters(lat1, lon1, lat2, lon2);
  }
  GEPETO_CHECK_MSG(false, "unknown DistanceKind");
}

std::string_view distance_name(DistanceKind kind) {
  switch (kind) {
    case DistanceKind::kSquaredEuclidean: return "SquaredEuclidean";
    case DistanceKind::kEuclidean: return "Euclidean";
    case DistanceKind::kManhattan: return "Manhattan";
    case DistanceKind::kHaversine: return "Haversine";
  }
  return "?";
}

DistanceKind distance_from_name(std::string_view name) {
  if (name == "SquaredEuclidean") return DistanceKind::kSquaredEuclidean;
  if (name == "Euclidean") return DistanceKind::kEuclidean;
  if (name == "Manhattan") return DistanceKind::kManhattan;
  if (name == "Haversine") return DistanceKind::kHaversine;
  GEPETO_CHECK_MSG(false, "unknown distance measure: " << name);
}

}  // namespace gepeto::geo
