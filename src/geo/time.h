// Civil-time <-> Unix-time <-> GeoLife day-number conversions.
//
// GeoLife's fifth field is "the date as the number of days elapsed since
// 12/30/1899" (an OLE Automation date), with the time of day as the
// fractional part. These conversions are exact for the integral parts and
// round-tripped to the second for fractional day numbers.
#pragma once

#include <cstdint>
#include <string>

namespace gepeto::geo {

struct CivilTime {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31
  int hour = 0;
  int minute = 0;
  int second = 0;

  friend bool operator==(const CivilTime&, const CivilTime&) = default;
};

/// Days from 1970-01-01 to the given civil date (proleptic Gregorian).
std::int64_t days_from_civil(int year, int month, int day);

/// Inverse of days_from_civil.
void civil_from_days(std::int64_t days, int& year, int& month, int& day);

/// Civil date-time (UTC) -> Unix seconds.
std::int64_t to_unix_seconds(const CivilTime& ct);

/// Unix seconds -> civil date-time (UTC).
CivilTime from_unix_seconds(std::int64_t ts);

/// Unix seconds -> GeoLife day number (days since 1899-12-30, fractional).
double to_geolife_days(std::int64_t ts);

/// GeoLife day number -> Unix seconds (rounded to the nearest second).
std::int64_t from_geolife_days(double days);

/// "YYYY-MM-DD" / "HH:MM:SS" formatting used by GeoLife logs.
std::string format_date(const CivilTime& ct);
std::string format_time(const CivilTime& ct);

/// Parse "YYYY-MM-DD" and "HH:MM:SS" into `ct`; returns false on malformed
/// input.
bool parse_date(std::string_view s, CivilTime& ct);
bool parse_time(std::string_view s, CivilTime& ct);

/// Day of week for a Unix timestamp: 0 = Monday ... 6 = Sunday.
int day_of_week(std::int64_t ts);

/// Seconds since local midnight (UTC-based; the synthetic city keeps UTC).
int seconds_of_day(std::int64_t ts);

}  // namespace gepeto::geo
