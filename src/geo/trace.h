// Core mobility-data types (paper Section II).
//
// A *mobility trace* is (identifier, spatial coordinate, timestamp, and
// optional additional information — here the altitude, as in GeoLife). A
// *trail of traces* is the time-ordered collection of one individual's
// traces; a *geolocated dataset* is a set of trails from different
// individuals.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace gepeto::geo {

/// One GPS observation of one user.
struct MobilityTrace {
  std::int32_t user_id = 0;
  double latitude = 0.0;    ///< decimal degrees, positive north
  double longitude = 0.0;   ///< decimal degrees, positive east
  double altitude_ft = 0.0; ///< feet, as stored by GeoLife (-777 = missing)
  std::int64_t timestamp = 0;  ///< seconds since the Unix epoch (UTC)

  friend bool operator==(const MobilityTrace&, const MobilityTrace&) = default;
};

/// Time-ordered traces of a single user.
using Trail = std::vector<MobilityTrace>;

/// A set of trails keyed by user identifier.
class GeolocatedDataset {
 public:
  GeolocatedDataset() = default;

  /// Append one trace to its user's trail (caller keeps traces time-ordered
  /// per user, as the generator and parsers do).
  void add(const MobilityTrace& trace) { trails_[trace.user_id].push_back(trace); }

  void add_trail(std::int32_t user_id, Trail trail) {
    trails_[user_id] = std::move(trail);
  }

  bool has_user(std::int32_t user_id) const { return trails_.count(user_id) != 0; }

  const Trail& trail(std::int32_t user_id) const { return trails_.at(user_id); }

  /// User ids in ascending order (map keys).
  std::vector<std::int32_t> users() const {
    std::vector<std::int32_t> out;
    out.reserve(trails_.size());
    for (const auto& [uid, trail] : trails_) out.push_back(uid);
    return out;
  }

  std::size_t num_users() const { return trails_.size(); }

  std::size_t num_traces() const {
    std::size_t n = 0;
    for (const auto& [uid, trail] : trails_) n += trail.size();
    return n;
  }

  /// Every trace, in (user, time) order.
  std::vector<MobilityTrace> all_traces() const {
    std::vector<MobilityTrace> out;
    out.reserve(num_traces());
    for (const auto& [uid, trail] : trails_)
      out.insert(out.end(), trail.begin(), trail.end());
    return out;
  }

  auto begin() const { return trails_.begin(); }
  auto end() const { return trails_.end(); }

 private:
  std::map<std::int32_t, Trail> trails_;  // ordered: deterministic iteration
};

}  // namespace gepeto::geo
