// Batched, vectorized distance kernels for the map hot path (DESIGN.md §14).
//
// The k-means assignment loop and the radius-style neighborhood tests spend
// their time computing point-vs-centroid (or point-vs-origin) distances one
// pair at a time through the geo::distance(kind, ...) enum dispatch. The
// kernels here hoist the DistanceKind switch out of the per-point loop and
// evaluate whole batches of points at once:
//
//   * CentroidKernel — n points against all k centroids with a per-point
//     argmin ("which centroid is nearest"), the k-means assignment kernel.
//   * haversine_meters_batch / equirectangular_meters_batch — one fixed
//     origin against n points, the radius-test/fold kernel used by MMC
//     attachment, mix-zone tests, R-Tree radius search, and DJ-Cluster
//     cluster summaries.
//
// Three backends, selectable via GEPETO_KERNEL=legacy|scalar|simd:
//
//   * kLegacy — the pre-kernel code path: per-pair geo::distance() calls
//     with the full metric formula (haversine pays atan2 + 2 sqrt per pair).
//     Kept so benches can measure the win honestly.
//   * kScalar — the batched scalar reference: the DistanceKind switch runs
//     once per batch, comparisons use reduced monotone keys (squared
//     distance for Euclidean, the haversine "a" term for great-circle), and
//     per-centroid cos(lat) terms are precomputed.
//   * kSimd — the same arithmetic with the mul/add/compare assembly
//     vectorized (AVX2 when the CPU has it, SSE2 otherwise — both are
//     runtime-dispatched; non-x86 builds fall back to kScalar arithmetic).
//     Metrics dominated by libm transcendentals (haversine) keep the scalar
//     batch kernel under kSimd too: wrapping scalar sin calls in vector
//     blends measured slower than the plain batch loop, and the batch loop
//     already beats legacy ~4x on the reduced key alone.
//
// Bit-identity contract: kScalar and kSimd produce byte-identical outputs
// for every input, including NaN/Inf coordinates — each SIMD lane executes
// exactly the scalar per-point algorithm (points ride in lanes; the argmin
// blend uses strict <, so the lowest centroid index wins ties exactly like
// the scalar keep-first loop), transcendental terms use the same libm calls
// in both backends, and vector mul/add/sqrt are IEEE-exact copies of their
// scalar counterparts (no FMA contraction: kernels.cc is compiled with
// -ffp-contract=off and the AVX2 target does not enable FMA). Winning
// distances are reported in the metric's own units, bit-identical to
// geo::distance() for the winning pair.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "geo/distance.h"

namespace gepeto::geo {

/// Kernel implementation selector (see file comment).
enum class KernelBackend { kLegacy, kScalar, kSimd };

/// Process-wide backend: resolved once from GEPETO_KERNEL=legacy|scalar|simd
/// (default simd) and cached. Throws CheckFailure on unknown names.
KernelBackend kernel_backend();

/// Override the cached backend (tests and backend-comparison benches). Set
/// before submitting jobs; forked process-backend workers inherit the value.
void set_kernel_backend_for_testing(KernelBackend backend);

std::string_view kernel_backend_name(KernelBackend backend);

/// Instruction-set level the kSimd backend dispatches to. Resolved once from
/// CPUID on x86-64 (kAvx2 when available, else kSse2); non-x86 builds always
/// report kScalarFallback. Tests can force a lower level to exercise every
/// dispatch target on one machine; requesting a level that is not compiled
/// in degrades to scalar arithmetic (still bit-identical).
enum class SimdLevel { kScalarFallback, kSse2, kAvx2 };

SimdLevel simd_level();
void set_simd_level_for_testing(SimdLevel level);
std::string_view simd_level_name(SimdLevel level);

/// Nearest-centroid batch kernel: evaluates n points against all k centroids
/// and reports the argmin per point.
///
/// Tie-break contract (asserted by tests/test_kernels.cc): when two
/// centroids compare exactly equal for a point, the LOWEST centroid index
/// wins — the scalar loop keeps the first strict improvement, and the SIMD
/// lanes reproduce that exactly because each lane scans centroids in index
/// order with a strict < blend. NaN comparison keys are never selected
/// (strict < is false); a point whose every key is NaN reports index 0 and
/// distance std::numeric_limits<double>::max(), matching the legacy loop's
/// untouched initializer.
class CentroidKernel {
 public:
  /// Snapshots k centroid coordinates (struct-of-arrays) and precomputes the
  /// per-centroid cos(lat) terms used by the haversine kernel.
  CentroidKernel(DistanceKind kind, const double* centroid_lats,
                 const double* centroid_lons, std::size_t k);

  /// For each of the n points, writes the nearest centroid index into
  /// out_index[i] and, when out_distance is non-null, the winning distance
  /// into out_distance[i] — in the metric's own units (meters for haversine,
  /// degree-space otherwise), bit-identical to geo::distance(kind, ...) for
  /// the winning pair.
  void nearest(const double* lats, const double* lons, std::size_t n,
               std::uint32_t* out_index, double* out_distance = nullptr) const;

  std::size_t k() const { return clat_.size(); }
  DistanceKind kind() const { return kind_; }

 private:
  DistanceKind kind_;
  std::vector<double> clat_;
  std::vector<double> clon_;
  std::vector<double> ccos_;  ///< cos(lat * kDegToRad) per centroid (haversine)
};

/// Batched haversine: distances from one origin to n points, bit-identical
/// per pair to haversine_meters(lat1, lon1, lats2[i], lons2[i]). Scalar on
/// every backend — the per-pair cost is the sin/cos/atan2 calls, which have
/// no vector form here; the batch form still hoists cos(lat1) out of the
/// loop. Callers batch distances into a buffer and keep their original
/// comparison fold over it, preserving per-site tie semantics.
void haversine_meters_batch(double lat1, double lon1, const double* lats2,
                            const double* lons2, std::size_t n, double* out);

/// Batched equirectangular approximation: bit-identical per pair to
/// equirectangular_meters(lat1, lon1, lats2[i], lons2[i]). Fully vectorized
/// under kSimd (cos(lat1) hoisted; mul/add/sqrt are IEEE-exact in vector
/// form), scalar under kScalar/kLegacy.
void equirectangular_meters_batch(double lat1, double lon1,
                                  const double* lats2, const double* lons2,
                                  std::size_t n, double* out);

}  // namespace gepeto::geo
