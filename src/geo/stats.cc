#include "geo/stats.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <vector>

#include "common/table.h"
#include "geo/distance.h"
#include "geo/time.h"

namespace gepeto::geo {

DatasetStats compute_stats(const GeolocatedDataset& dataset) {
  DatasetStats s;
  s.num_users = dataset.num_users();
  s.num_traces = dataset.num_traces();
  if (s.num_traces == 0) return s;
  s.avg_traces_per_user =
      static_cast<double>(s.num_traces) / static_cast<double>(s.num_users);

  s.earliest = std::numeric_limits<std::int64_t>::max();
  s.latest = std::numeric_limits<std::int64_t>::min();
  s.min_latitude = s.min_longitude = std::numeric_limits<double>::max();
  s.max_latitude = s.max_longitude = std::numeric_limits<double>::lowest();

  std::vector<double> gaps;
  for (const auto& [uid, trail] : dataset) {
    for (std::size_t i = 0; i < trail.size(); ++i) {
      const auto& t = trail[i];
      s.earliest = std::min(s.earliest, t.timestamp);
      s.latest = std::max(s.latest, t.timestamp);
      s.min_latitude = std::min(s.min_latitude, t.latitude);
      s.max_latitude = std::max(s.max_latitude, t.latitude);
      s.min_longitude = std::min(s.min_longitude, t.longitude);
      s.max_longitude = std::max(s.max_longitude, t.longitude);
      if (i > 0) {
        const auto& p = trail[i - 1];
        const double gap = static_cast<double>(t.timestamp - p.timestamp);
        if (gap > 0 && gap <= 600.0) gaps.push_back(gap);
        s.total_distance_km +=
            haversine_meters(p.latitude, p.longitude, t.latitude,
                             t.longitude) /
            1000.0;
      }
    }
  }
  if (!gaps.empty()) {
    auto mid = gaps.begin() + static_cast<std::ptrdiff_t>(gaps.size() / 2);
    std::nth_element(gaps.begin(), mid, gaps.end());
    s.median_sample_period_s = *mid;
  }
  return s;
}

std::string describe(const DatasetStats& s) {
  std::ostringstream os;
  os << "users: " << s.num_users << ", traces: "
     << gepeto::format_count(s.num_traces) << " (avg "
     << gepeto::format_double(s.avg_traces_per_user, 0) << "/user)\n";
  if (s.num_traces != 0) {
    os << "period: " << format_date(from_unix_seconds(s.earliest)) << " .. "
       << format_date(from_unix_seconds(s.latest)) << "\n";
    os << "bbox: lat [" << gepeto::format_double(s.min_latitude, 4) << ", "
       << gepeto::format_double(s.max_latitude, 4) << "], lon ["
       << gepeto::format_double(s.min_longitude, 4) << ", "
       << gepeto::format_double(s.max_longitude, 4) << "]\n";
    os << "median sampling period: "
       << gepeto::format_double(s.median_sample_period_s, 1)
       << " s, total distance: "
       << gepeto::format_double(s.total_distance_km, 0) << " km\n";
  }
  return os.str();
}

}  // namespace gepeto::geo
