#include "geo/geolife.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/check.h"
#include "geo/time.h"
#include "mapreduce/dfs.h"
#include "mapreduce/job.h"
#include "mapreduce/seqfile.h"

namespace gepeto::geo {

namespace {

/// Split `line` at commas into at most `max_fields` views. Returns the number
/// of fields found, or -1 if there are more than `max_fields`.
int split_csv(std::string_view line, std::string_view* fields,
              int max_fields) {
  int n = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ',') {
      if (n == max_fields) return -1;
      fields[n++] = line.substr(start, i - start);
      start = i + 1;
    }
  }
  return n;
}

bool parse_double(std::string_view s, double& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  // from_chars happily parses "nan" and "inf"; a non-finite coordinate,
  // altitude, or day number is never a valid GeoLife field, and letting one
  // through silently poisons downstream aggregates (NaN compares false
  // against every range bound).
  return ec == std::errc() && ptr == last && std::isfinite(out);
}

bool parse_i32(std::string_view s, std::int32_t& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

/// Shared tail of plt/dataset parsing: fields[0..6] are the 7 PLT fields.
bool parse_plt_fields(const std::string_view* f, std::int32_t user_id,
                      MobilityTrace& out) {
  MobilityTrace t;
  t.user_id = user_id;
  if (!parse_double(f[0], t.latitude)) return false;
  if (!parse_double(f[1], t.longitude)) return false;
  double unused = 0.0;
  if (!parse_double(f[2], unused)) return false;
  if (!parse_double(f[3], t.altitude_ft)) return false;
  double days = 0.0;
  if (!parse_double(f[4], days)) return false;
  // The string date/time is authoritative (exact to the second); the day
  // number is redundant. Fall back to the day number only if date/time are
  // malformed, as some GeoLife logs have been seen with mangled tails.
  CivilTime ct;
  if (parse_date(f[5], ct) && parse_time(f[6], ct)) {
    t.timestamp = to_unix_seconds(ct);
  } else {
    t.timestamp = from_geolife_days(days);
  }
  // Negated-inside form: NaN fails the test (a plain `< || >` chain would
  // accept it), matching trace_from_binary.
  if (!(t.latitude >= -90.0 && t.latitude <= 90.0)) return false;
  if (!(t.longitude >= -180.0 && t.longitude <= 180.0)) return false;
  out = t;
  return true;
}

void append_plt_fields(std::string& out, const MobilityTrace& t) {
  char buf[128];
  const CivilTime ct = from_unix_seconds(t.timestamp);
  std::snprintf(buf, sizeof(buf), "%.6f,%.6f,0,%.0f,%.10f,", t.latitude,
                t.longitude, t.altitude_ft, to_geolife_days(t.timestamp));
  out += buf;
  out += format_date(ct);
  out += ',';
  out += format_time(ct);
}

}  // namespace

std::string plt_header() {
  return
      "Geolife trajectory\n"
      "WGS 84\n"
      "Altitude is in Feet\n"
      "Reserved 3\n"
      "0,2,255,My Track,0,0,2,8421376\n"
      "0\n";
}

std::string plt_line(const MobilityTrace& trace) {
  std::string out;
  out.reserve(80);
  append_plt_fields(out, trace);
  return out;
}

bool parse_plt_line(std::string_view line, std::int32_t user_id,
                    MobilityTrace& out) {
  std::string_view f[7];
  if (split_csv(line, f, 7) != 7) return false;
  return parse_plt_fields(f, user_id, out);
}

std::string dataset_line(const MobilityTrace& trace) {
  std::string out;
  out.reserve(90);
  out += std::to_string(trace.user_id);
  out += ',';
  append_plt_fields(out, trace);
  return out;
}

bool parse_dataset_line(std::string_view line, MobilityTrace& out) {
  std::string_view f[8];
  if (split_csv(line, f, 8) != 8) return false;
  std::int32_t uid = 0;
  if (!parse_i32(f[0], uid)) return false;
  return parse_plt_fields(f + 1, uid, out);
}

MobilityTrace parse_dataset_line_or_throw(std::string_view line) {
  std::string_view f[8];
  if (split_csv(line, f, 8) != 8)
    throw mr::TaskError("dataset line is not 8 comma-separated fields: \"" +
                        std::string(line) + "\"");
  std::int32_t uid = 0;
  if (!parse_i32(f[0], uid))
    throw mr::TaskError("bad user id field \"" + std::string(f[0]) +
                        "\" in dataset line");
  MobilityTrace t;
  if (!parse_plt_fields(f + 1, uid, t)) {
    // Re-derive the offending field for the error message; the fast path
    // above stays branch-light.
    double lat = 0.0, lon = 0.0;
    if (!parse_double(f[1], lat))
      throw mr::TaskError("bad latitude field \"" + std::string(f[1]) +
                          "\" (must be a finite number)");
    if (!parse_double(f[2], lon))
      throw mr::TaskError("bad longitude field \"" + std::string(f[2]) +
                          "\" (must be a finite number)");
    if (!(lat >= -90.0 && lat <= 90.0))
      throw mr::TaskError("latitude " + std::string(f[1]) +
                          " out of range [-90, 90]");
    if (!(lon >= -180.0 && lon <= 180.0))
      throw mr::TaskError("longitude " + std::string(f[2]) +
                          " out of range [-180, 180]");
    throw mr::TaskError("malformed dataset line: \"" + std::string(line) +
                        "\"");
  }
  return t;
}

std::string trail_to_lines(const Trail& trail) {
  std::string out;
  out.reserve(trail.size() * 90);
  for (const auto& t : trail) {
    out += dataset_line(t);
    out.push_back('\n');
  }
  return out;
}

void dataset_to_dfs(mr::Dfs& dfs, const std::string& prefix,
                    const GeolocatedDataset& dataset, int num_files) {
  GEPETO_CHECK(num_files > 0);
  const auto users = dataset.users();
  const int files =
      std::min<int>(num_files, std::max<int>(1, static_cast<int>(users.size())));
  const std::size_t per_file =
      (users.size() + static_cast<std::size_t>(files) - 1) /
      static_cast<std::size_t>(files);

  std::size_t u = 0;
  for (int fidx = 0; fidx < files && u < users.size(); ++fidx) {
    std::string contents;
    for (std::size_t i = 0; i < per_file && u < users.size(); ++i, ++u)
      contents += trail_to_lines(dataset.trail(users[u]));
    char name[32];
    std::snprintf(name, sizeof(name), "/points-%05d", fidx);
    dfs.put(prefix + name, std::move(contents));
  }
}

GeolocatedDataset dataset_from_dfs(const mr::Dfs& dfs,
                                   const std::string& prefix) {
  GeolocatedDataset out;
  for (const auto& path : dfs.list(prefix)) {
    const std::string_view data = dfs.read(path);
    std::size_t start = 0;
    while (start < data.size()) {
      std::size_t end = data.find('\n', start);
      if (end == std::string_view::npos) end = data.size();
      const std::string_view line = data.substr(start, end - start);
      if (!line.empty()) {
        MobilityTrace t;
        GEPETO_CHECK_MSG(parse_dataset_line(line, t),
                         "malformed dataset line in " << path << ": " << line);
        out.add(t);
      }
      start = end + 1;
    }
  }
  return out;
}

std::uint64_t count_dfs_records(const mr::Dfs& dfs,
                                const std::string& prefix) {
  std::uint64_t n = 0;
  for (const auto& path : dfs.list(prefix)) {
    const std::string_view data = dfs.read(path);
    for (char c : data) n += (c == '\n');
  }
  return n;
}

void dataset_to_dfs_binary(mr::Dfs& dfs, const std::string& prefix,
                           const GeolocatedDataset& dataset, int num_files) {
  GEPETO_CHECK(num_files > 0);
  const auto users = dataset.users();
  const int files = std::min<int>(
      num_files, std::max<int>(1, static_cast<int>(users.size())));
  const std::size_t per_file =
      (users.size() + static_cast<std::size_t>(files) - 1) /
      static_cast<std::size_t>(files);

  std::size_t u = 0;
  for (int fidx = 0; fidx < files && u < users.size(); ++fidx) {
    mr::SeqFileWriter writer(dfs.config().seed ^ static_cast<std::uint64_t>(fidx));
    std::string record;
    for (std::size_t i = 0; i < per_file && u < users.size(); ++i, ++u) {
      for (const auto& t : dataset.trail(users[u])) {
        record.clear();
        append_binary_trace(record, t);
        writer.append(record);
      }
    }
    char name[32];
    std::snprintf(name, sizeof(name), "/points-%05d", fidx);
    dfs.put(prefix + name, std::move(writer.contents()));
  }
}

void append_binary_trace(std::string& out, const MobilityTrace& t) {
  char buf[kBinaryTraceSize];
  const float alt = static_cast<float>(t.altitude_ft);
  std::memcpy(buf, &t.user_id, 4);
  std::memcpy(buf + 4, &t.latitude, 8);
  std::memcpy(buf + 12, &t.longitude, 8);
  std::memcpy(buf + 20, &alt, 4);
  std::memcpy(buf + 24, &t.timestamp, 8);
  out.append(buf, kBinaryTraceSize);
}

std::string trace_to_binary(const MobilityTrace& t) {
  std::string out;
  out.reserve(kBinaryTraceSize);
  append_binary_trace(out, t);
  return out;
}

bool trace_from_binary(std::string_view bytes, MobilityTrace& out) {
  if (bytes.size() != kBinaryTraceSize) return false;
  MobilityTrace t;
  float alt = 0;
  std::memcpy(&t.user_id, bytes.data(), 4);
  std::memcpy(&t.latitude, bytes.data() + 4, 8);
  std::memcpy(&t.longitude, bytes.data() + 12, 8);
  std::memcpy(&alt, bytes.data() + 20, 4);
  std::memcpy(&t.timestamp, bytes.data() + 24, 8);
  t.altitude_ft = alt;
  if (!(t.latitude >= -90.0 && t.latitude <= 90.0)) return false;
  if (!(t.longitude >= -180.0 && t.longitude <= 180.0)) return false;
  out = t;
  return true;
}

std::size_t write_geolife_directory(const GeolocatedDataset& dataset,
                                    const std::string& root,
                                    int trajectory_gap_s) {
  namespace fs = std::filesystem;
  std::size_t files = 0;
  for (const auto& [uid, trail] : dataset) {
    char dirname[32];
    std::snprintf(dirname, sizeof(dirname), "%03d", uid);
    const fs::path dir = fs::path(root) / "Data" / dirname / "Trajectory";
    fs::create_directories(dir);

    std::size_t start = 0;
    while (start < trail.size()) {
      std::size_t end = start + 1;
      while (end < trail.size() &&
             trail[end].timestamp - trail[end - 1].timestamp <=
                 trajectory_gap_s)
        ++end;
      // File named after the first trace's timestamp, GeoLife style
      // (YYYYMMDDHHMMSS.plt).
      const CivilTime ct = from_unix_seconds(trail[start].timestamp);
      char fname[40];
      std::snprintf(fname, sizeof(fname), "%04d%02d%02d%02d%02d%02d.plt",
                    ct.year, ct.month, ct.day, ct.hour, ct.minute, ct.second);
      std::string contents = plt_header();
      for (std::size_t i = start; i < end; ++i) {
        contents += plt_line(trail[i]);
        contents.push_back('\n');
      }
      std::ofstream out(dir / fname, std::ios::binary);
      GEPETO_CHECK_MSG(out.good(), "cannot create " << (dir / fname));
      out << contents;
      ++files;
      start = end;
    }
  }
  return files;
}

GeolocatedDataset read_geolife_directory(const std::string& root) {
  namespace fs = std::filesystem;
  GeolocatedDataset out;
  const fs::path data_dir = fs::path(root) / "Data";
  GEPETO_CHECK_MSG(fs::is_directory(data_dir),
                   "not a GeoLife tree (no Data/): " << root);

  // Deterministic order: sort user directories, then files.
  std::vector<fs::path> user_dirs;
  for (const auto& entry : fs::directory_iterator(data_dir))
    if (entry.is_directory()) user_dirs.push_back(entry.path());
  std::sort(user_dirs.begin(), user_dirs.end());

  for (const auto& user_dir : user_dirs) {
    std::int32_t uid = 0;
    const std::string name = user_dir.filename().string();
    const char* first = name.data();
    auto [ptr, ec] = std::from_chars(first, first + name.size(), uid);
    if (ec != std::errc() || ptr != first + name.size()) continue;

    const fs::path traj = user_dir / "Trajectory";
    if (!fs::is_directory(traj)) continue;
    std::vector<fs::path> plt_files;
    for (const auto& entry : fs::directory_iterator(traj))
      if (entry.path().extension() == ".plt") plt_files.push_back(entry.path());
    std::sort(plt_files.begin(), plt_files.end());

    Trail trail;
    for (const auto& file : plt_files) {
      std::ifstream in(file, std::ios::binary);
      GEPETO_CHECK_MSG(in.good(), "cannot open " << file);
      std::string line;
      int line_no = 0;
      while (std::getline(in, line)) {
        ++line_no;
        if (line_no <= 6) continue;  // the fixed header
        if (!line.empty() && line.back() == '\r') line.pop_back();
        MobilityTrace t;
        if (parse_plt_line(line, uid, t)) trail.push_back(t);
        // Unparsable lines are skipped, as in the real dataset.
      }
    }
    out.add_trail(uid, std::move(trail));
  }
  return out;
}

}  // namespace gepeto::geo
