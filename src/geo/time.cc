#include "geo/time.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace gepeto::geo {

namespace {
/// Days between 1899-12-30 (the OLE epoch GeoLife uses) and 1970-01-01.
constexpr std::int64_t kOleToUnixDays = 25569;
}  // namespace

std::int64_t days_from_civil(int y, int m, int d) {
  // Howard Hinnant's algorithm (public domain), exact for the proleptic
  // Gregorian calendar.
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);              // [0, 399]
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;             // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void civil_from_days(std::int64_t z, int& year, int& month, int& day) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);           // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;              // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);           // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                        // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                             // [1, 12]
  year = static_cast<int>(y + (m <= 2));
  month = static_cast<int>(m);
  day = static_cast<int>(d);
}

std::int64_t to_unix_seconds(const CivilTime& ct) {
  return days_from_civil(ct.year, ct.month, ct.day) * 86400 +
         ct.hour * 3600 + ct.minute * 60 + ct.second;
}

CivilTime from_unix_seconds(std::int64_t ts) {
  std::int64_t days = ts / 86400;
  std::int64_t rem = ts % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  CivilTime ct;
  civil_from_days(days, ct.year, ct.month, ct.day);
  ct.hour = static_cast<int>(rem / 3600);
  ct.minute = static_cast<int>((rem % 3600) / 60);
  ct.second = static_cast<int>(rem % 60);
  return ct;
}

double to_geolife_days(std::int64_t ts) {
  return static_cast<double>(ts) / 86400.0 + static_cast<double>(kOleToUnixDays);
}

std::int64_t from_geolife_days(double days) {
  return static_cast<std::int64_t>(
      std::llround((days - static_cast<double>(kOleToUnixDays)) * 86400.0));
}

std::string format_date(const CivilTime& ct) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", ct.year, ct.month, ct.day);
  return buf;
}

std::string format_time(const CivilTime& ct) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d", ct.hour, ct.minute,
                ct.second);
  return buf;
}

namespace {
bool parse_2_or_4_digits(std::string_view s, std::size_t pos, std::size_t len,
                         int& out) {
  int v = 0;
  if (pos + len > s.size()) return false;
  for (std::size_t i = pos; i < pos + len; ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    v = v * 10 + (s[i] - '0');
  }
  out = v;
  return true;
}
}  // namespace

bool parse_date(std::string_view s, CivilTime& ct) {
  if (s.size() != 10 || s[4] != '-' || s[7] != '-') return false;
  int y, m, d;
  if (!parse_2_or_4_digits(s, 0, 4, y) || !parse_2_or_4_digits(s, 5, 2, m) ||
      !parse_2_or_4_digits(s, 8, 2, d))
    return false;
  if (m < 1 || m > 12 || d < 1 || d > 31) return false;
  ct.year = y;
  ct.month = m;
  ct.day = d;
  return true;
}

bool parse_time(std::string_view s, CivilTime& ct) {
  if (s.size() != 8 || s[2] != ':' || s[5] != ':') return false;
  int h, m, sec;
  if (!parse_2_or_4_digits(s, 0, 2, h) || !parse_2_or_4_digits(s, 3, 2, m) ||
      !parse_2_or_4_digits(s, 6, 2, sec))
    return false;
  if (h > 23 || m > 59 || sec > 60) return false;
  ct.hour = h;
  ct.minute = m;
  ct.second = sec;
  return true;
}

int day_of_week(std::int64_t ts) {
  std::int64_t days = ts / 86400;
  if (ts % 86400 < 0) --days;
  // 1970-01-01 was a Thursday (index 3 with Monday = 0).
  return static_cast<int>(((days % 7) + 7 + 3) % 7);
}

int seconds_of_day(std::int64_t ts) {
  std::int64_t rem = ts % 86400;
  if (rem < 0) rem += 86400;
  return static_cast<int>(rem);
}

}  // namespace gepeto::geo
