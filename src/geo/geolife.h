// GeoLife file-format support (paper Section IV, Fig. 1).
//
// A GeoLife PLT line is
//   latitude,longitude,0,altitude_ft,days_since_1899,date,time
// e.g.
//   39.906631,116.385564,0,492,39745.1174768519,2008-10-24,02:49:30
// where field 3 is unused ("has no meaning for this particular dataset"),
// field 5 is the OLE day number, and the last two fields are the string
// date/time acting as the timestamp.
//
// In the real dataset, one PLT file holds one trajectory and lives in a
// directory named after the user. When a dataset is loaded into the DFS for
// MapReduce processing we prepend the user identifier, giving the flat
// *dataset line*:
//   user_id,latitude,longitude,0,altitude_ft,days_since_1899,date,time
// so that any chunk of any file is self-describing.
#pragma once

#include <string>
#include <string_view>

#include "geo/trace.h"

namespace gepeto::mr {
class Dfs;
}

namespace gepeto::geo {

/// The 6 header lines present in every real PLT file.
std::string plt_header();

/// Format one trace as a PLT line (without user id, no trailing newline).
std::string plt_line(const MobilityTrace& trace);

/// Parse a PLT line; `user_id` is taken from the caller (directory name in
/// the real dataset). Returns false on malformed input.
bool parse_plt_line(std::string_view line, std::int32_t user_id,
                    MobilityTrace& out);

/// Format one trace as a flat dataset line (with user id, no newline).
std::string dataset_line(const MobilityTrace& trace);

/// Parse a flat dataset line. Returns false on malformed input — including
/// NaN/Inf coordinates and lat/lon outside [-90, 90] / [-180, 180].
bool parse_dataset_line(std::string_view line, MobilityTrace& out);

/// Strict variant for pipelines that must not silently drop records: throws
/// mr::TaskError naming the offending field (bad user id, non-finite or
/// out-of-range coordinate, wrong field count) so the engine's retry / skip
/// machinery sees a structured per-record failure.
MobilityTrace parse_dataset_line_or_throw(std::string_view line);

/// Serialize a whole trail as consecutive dataset lines.
std::string trail_to_lines(const Trail& trail);

/// Write a dataset into the DFS under `prefix`, as `num_files` files of
/// consecutive users (`prefix/points-NNNNN`). Lines are (user, time) ordered
/// within each file, as produced by concatenating per-user logs.
void dataset_to_dfs(mr::Dfs& dfs, const std::string& prefix,
                    const GeolocatedDataset& dataset, int num_files = 4);

/// Read every file under `prefix` back into a dataset (inverse of
/// dataset_to_dfs; also reads MapReduce job outputs made of dataset lines).
GeolocatedDataset dataset_from_dfs(const mr::Dfs& dfs,
                                   const std::string& prefix);

/// Count dataset lines under a DFS prefix without materializing traces.
std::uint64_t count_dfs_records(const mr::Dfs& dfs, const std::string& prefix);

/// Write a dataset as SequenceFile-style binary files (`prefix/points-NNNNN`,
/// one 32-byte record per trace) — the storage format Mahout-style jobs
/// consume; readable by mr::run_binary_map_only_job.
void dataset_to_dfs_binary(mr::Dfs& dfs, const std::string& prefix,
                           const GeolocatedDataset& dataset,
                           int num_files = 4);

// --- binary record encoding (for SequenceFile-style storage) ----------------
//
// Mahout-style jobs consume binary SequenceFiles rather than text (paper,
// related work). This fixed 32-byte little-endian encoding is the record
// payload used with mr::SeqFileWriter/SeqFileReader: roughly 3x smaller
// than a dataset line and parsed with a memcpy instead of a float parse.

inline constexpr std::size_t kBinaryTraceSize = 32;

/// Encode as 32 bytes: i32 user, f64 lat, f64 lon, f32 alt_ft, i64 ts.
std::string trace_to_binary(const MobilityTrace& trace);
void append_binary_trace(std::string& out, const MobilityTrace& trace);

/// Decode; returns false if the size is wrong or coordinates are invalid.
bool trace_from_binary(std::string_view bytes, MobilityTrace& out);

// --- real GeoLife directory layout on the local filesystem -----------------
//
// The distributed dataset ships as Data/<user-id>/Trajectory/<stamp>.plt,
// one PLT file per trajectory, each starting with the 6 header lines. These
// helpers read/write that exact layout, so the toolkit can ingest the real
// dataset when available (and our writer round-trips through our reader).

/// Write `dataset` under `root` in the GeoLife directory layout, splitting
/// each user's trail into trajectory files at gaps larger than
/// `trajectory_gap_s`. Returns the number of PLT files written.
std::size_t write_geolife_directory(const GeolocatedDataset& dataset,
                                    const std::string& root,
                                    int trajectory_gap_s = 600);

/// Read a GeoLife directory tree rooted at `root` ("Data/<uid>/Trajectory/
/// *.plt"); user ids come from the directory names. Unparsable lines are
/// skipped (the real dataset has a few).
GeolocatedDataset read_geolife_directory(const std::string& root);

}  // namespace gepeto::geo
