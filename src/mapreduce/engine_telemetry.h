// Telemetry emission for the MapReduce engine.
//
// The engine executes tasks for real and then *replays* them on the virtual
// cluster clock, so trace emission is post-hoc: once a job's schedule is
// known, these helpers lay its spans onto the recorder's sim timeline at the
// current cursor — job span, phase spans, one span per task attempt placed
// on its (node, slot) track, read/map/spill and shuffle/reduce/write child
// spans from the scheduler's cost breakdown, plus re-replication windows and
// blacklist instants. Everything here is non-templated so the heavy string
// work stays out of the templated engine code paths; every entry point is a
// no-op on a null sink.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "mapreduce/cluster.h"
#include "mapreduce/job.h"
#include "mapreduce/scheduler.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gepeto::mr::detail {

/// Fault-tolerance annotations of one task, extracted from TaskTry<> (which
/// is templated on the task output type and so cannot cross into this
/// non-templated helper).
struct TaskNote {
  int attempts = 0;
  std::uint64_t skipped_records = 0;
  bool ok = true;
};

/// Everything record_job_trace needs about a finished job's schedule.
/// Reduce members stay null for map-only jobs.
struct JobTraceData {
  const std::vector<MapTaskCost>* map_costs = nullptr;  ///< by task index
  const std::vector<TaskSlice>* map_slices = nullptr;
  const std::vector<SchedulerEvent>* map_events = nullptr;
  /// (start, duration) of each DFS re-replication pause between map waves,
  /// relative to map-phase start.
  const std::vector<std::pair<double, double>>* recovery_windows = nullptr;
  std::vector<TaskNote> map_notes;
  const std::vector<ReduceTaskCost>* reduce_costs = nullptr;
  const std::vector<TaskSlice>* reduce_slices = nullptr;
  const std::vector<SchedulerEvent>* reduce_events = nullptr;
  std::vector<TaskNote> reduce_notes;
};

inline const char* locality_name(Locality l) {
  switch (l) {
    case Locality::kDataLocal: return "data-local";
    case Locality::kRackLocal: return "rack-local";
    case Locality::kRemote: return "remote";
  }
  return "?";
}

inline std::string task_span_name(const char* kind, int task) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s-%05d", kind, task);
  return buf;
}

/// Job-level counters + duration histograms. Task-duration histograms come
/// from the schedule slices (virtual seconds — deterministic).
inline void record_job_metrics(telemetry::MetricsRegistry* m,
                               const JobResult& r,
                               const std::vector<TaskSlice>* map_slices,
                               const std::vector<TaskSlice>* reduce_slices) {
  if (m == nullptr) return;
  auto add = [&](const char* name, std::int64_t v, const char* help) {
    if (v != 0) m->counter(name, help).add(v);
  };
  m->counter("mr_jobs_total", "MapReduce jobs completed").inc();
  add("mr_map_tasks_total", r.num_map_tasks, "map tasks run");
  add("mr_reduce_tasks_total", r.num_reduce_tasks, "reduce tasks run");
  add("mr_input_bytes_total", static_cast<std::int64_t>(r.input_bytes),
      "bytes read by map tasks");
  add("mr_map_output_bytes_total",
      static_cast<std::int64_t>(r.map_output_bytes),
      "map output bytes before the combiner");
  add("mr_shuffle_bytes_total", static_cast<std::int64_t>(r.shuffle_bytes),
      "bytes crossing mapper->reducer");
  add("mr_spill_runs_total", static_cast<std::int64_t>(r.spill_runs),
      "sorted map-output runs k-way-merged by reducers");
  add("mr_spill_runs", static_cast<std::int64_t>(r.disk_spill_runs),
      "sorted runs spilled to scratch disk under the sort memory budget");
  add("mr_spill_bytes", static_cast<std::int64_t>(r.disk_spill_bytes),
      "bytes of sorted runs spilled to scratch disk");
  add("mr_output_bytes_total", static_cast<std::int64_t>(r.output_bytes),
      "job output bytes");
  add("mr_output_records_total", static_cast<std::int64_t>(r.output_records),
      "job output records");
  add("mr_failed_task_attempts_total", r.failed_task_attempts,
      "task attempts that crashed");
  add("mr_failed_tasks_total", r.failed_tasks,
      "tasks that permanently failed (tolerated)");
  add("mr_skipped_records_total",
      static_cast<std::int64_t>(r.skipped_records),
      "bad records skipped by skip mode");
  add("mr_blacklisted_nodes_total", r.blacklisted_nodes,
      "nodes blacklisted by the virtual jobtracker");
  add("mr_lost_chunks_total", r.lost_chunks,
      "chunks that lost every replica mid-job");
  add("mr_speculative_copies_total", r.speculative_copies,
      "speculative backup attempts launched");
  add("mr_speculative_wins_total", r.speculative_wins,
      "speculative copies that beat the original");
  add("mr_data_local_maps_total", r.data_local_maps, "data-local map tasks");
  add("mr_rack_local_maps_total", r.rack_local_maps, "rack-local map tasks");
  add("mr_remote_maps_total", r.remote_maps, "remote map tasks");

  m->histogram("mr_job_sim_seconds", telemetry::default_time_buckets(),
               "simulated job makespan")
      .observe(r.sim_seconds);
  if (r.sort_seconds > 0.0) {
    m->histogram("mr_sort_seconds", telemetry::default_time_buckets(),
                 "wall seconds map attempts spent sorting spill buffers")
        .observe(r.sort_seconds);
  }
  if (r.merge_seconds > 0.0) {
    m->histogram("mr_merge_seconds", telemetry::default_time_buckets(),
                 "wall seconds reducers spent k-way-merging sorted runs")
        .observe(r.merge_seconds);
  }
  if (r.external_merge_seconds > 0.0) {
    m->histogram("mr_external_merge_seconds",
                 telemetry::default_time_buckets(),
                 "wall seconds reducers spent streaming spill frames during "
                 "the external merge")
        .observe(r.external_merge_seconds);
  }
  if (r.map_parse_seconds > 0.0) {
    m->histogram("mr_map_parse_seconds", telemetry::default_time_buckets(),
                 "map-loop wall seconds spent decoding/parsing records "
                 "(everything the mapper did not attribute to kernels)")
        .observe(r.map_parse_seconds);
  }
  if (r.map_compute_seconds > 0.0) {
    m->histogram("mr_map_compute_seconds", telemetry::default_time_buckets(),
                 "map-loop wall seconds mappers attributed to batch distance "
                 "kernels")
        .observe(r.map_compute_seconds);
  }
  if (map_slices != nullptr) {
    auto& h = m->histogram("mr_map_task_sim_seconds",
                           telemetry::default_time_buckets(),
                           "simulated map attempt duration");
    for (const TaskSlice& s : *map_slices) {
      if (s.kind == TaskSlice::Kind::kAttempt) h.observe(s.finish - s.start);
    }
  }
  if (reduce_slices != nullptr) {
    auto& h = m->histogram("mr_reduce_task_sim_seconds",
                           telemetry::default_time_buckets(),
                           "simulated reduce attempt duration");
    for (const TaskSlice& s : *reduce_slices) {
      if (s.kind == TaskSlice::Kind::kAttempt) h.observe(s.finish - s.start);
    }
  }
}

namespace trace_impl {

inline void emit_slice(telemetry::TraceRecorder& rec, const char* kind,
                       const TaskSlice& s, double phase_base,
                       std::int64_t parent, const std::vector<TaskNote>& notes,
                       bool is_map) {
  std::vector<telemetry::SpanArg> args;
  args.push_back({"attempt", std::to_string(s.attempt)});
  if (is_map) args.push_back({"locality", locality_name(s.locality)});
  std::string cat = kind;
  switch (s.kind) {
    case TaskSlice::Kind::kAttempt: {
      if (static_cast<std::size_t>(s.task) < notes.size()) {
        const TaskNote& n = notes[static_cast<std::size_t>(s.task)];
        if (n.attempts > 1)
          args.push_back({"attempts_total", std::to_string(n.attempts)});
        if (n.skipped_records > 0)
          args.push_back(
              {"skipped_records", std::to_string(n.skipped_records)});
      }
      break;
    }
    case TaskSlice::Kind::kFailedAttempt:
      cat += "-failed";
      args.push_back({"outcome", "crashed"});
      break;
    case TaskSlice::Kind::kSpeculative:
      cat += "-speculative";
      args.push_back({"outcome", s.won ? "won" : "lost"});
      break;
  }
  rec.add_sim_span(task_span_name(kind, s.task), cat, phase_base + s.start,
                   phase_base + s.finish, s.node, s.slot, parent,
                   std::move(args));
}

inline void emit_breakdown(telemetry::TraceRecorder& rec, const TaskSlice& s,
                           double phase_base, std::int64_t parent,
                           const char* detail_cat, const char* names[3],
                           double parts[3], double startup) {
  // Children laid out sequentially after the startup gap; the slice's total
  // equals startup + parts by construction (scheduler breakdown).
  double at = phase_base + s.start + startup;
  for (int i = 0; i < 3; ++i) {
    if (parts[i] <= 0.0) continue;
    rec.add_sim_span(names[i], detail_cat, at, at + parts[i], s.node, s.slot,
                     parent);
    at += parts[i];
  }
}

}  // namespace trace_impl

/// Lay a finished job onto the recorder's sim timeline at the current
/// cursor, then advance the cursor past it. Returns the job span id.
inline void record_job_trace(telemetry::TraceRecorder* rec,
                             const ClusterConfig& config,
                             const JobConfig& job, const JobResult& r,
                             const JobTraceData& d) {
  if (rec == nullptr) return;
  const double base = rec->sim_cursor();

  std::vector<telemetry::SpanArg> job_args;
  job_args.push_back({"map_tasks", std::to_string(r.num_map_tasks)});
  if (r.num_reduce_tasks > 0)
    job_args.push_back({"reduce_tasks", std::to_string(r.num_reduce_tasks)});
  if (r.failed_task_attempts > 0)
    job_args.push_back(
        {"failed_attempts", std::to_string(r.failed_task_attempts)});
  if (r.skipped_records > 0)
    job_args.push_back(
        {"skipped_records", std::to_string(r.skipped_records)});
  const std::int64_t job_span = rec->add_sim_span(
      "job:" + job.name, "job", base, base + r.sim_seconds, -1, 0,
      telemetry::TraceRecorder::kCurrentParent, std::move(job_args));

  if (r.sim_startup_seconds > 0.0) {
    rec->add_sim_span("startup", "phase", base, base + r.sim_startup_seconds,
                      -1, 0, job_span);
  }

  // Map phase covers the waves plus any re-replication pauses between them.
  const double map_base = base + r.sim_startup_seconds;
  const double map_len = r.sim_map_seconds + r.sim_recovery_seconds;
  std::int64_t map_span = job_span;
  if (r.num_map_tasks > 0) {
    map_span = rec->add_sim_span("map phase", "phase", map_base,
                                 map_base + map_len, -1, 0, job_span);
  }
  if (d.map_slices != nullptr) {
    for (const TaskSlice& s : *d.map_slices) {
      trace_impl::emit_slice(*rec, "map", s, map_base, map_span, d.map_notes,
                             /*is_map=*/true);
      if (s.kind == TaskSlice::Kind::kAttempt && d.map_costs != nullptr &&
          static_cast<std::size_t>(s.task) < d.map_costs->size()) {
        const MapAttemptBreakdown b = map_attempt_breakdown(
            config, (*d.map_costs)[static_cast<std::size_t>(s.task)], s.node);
        const char* names[3] = {"read", "map", "spill"};
        double parts[3] = {b.read, b.cpu, b.spill};
        trace_impl::emit_breakdown(*rec, s, map_base, map_span, "map-detail",
                                   names, parts, b.startup);
      }
    }
  }
  if (d.map_events != nullptr) {
    for (const SchedulerEvent& e : *d.map_events) {
      rec->add_sim_instant("node blacklisted", "scheduler",
                           map_base + e.when, e.node, 0);
    }
  }
  if (d.recovery_windows != nullptr) {
    for (const auto& [start, len] : *d.recovery_windows) {
      rec->add_sim_span("re-replication", "dfs", map_base + start,
                        map_base + start + len, -1, 0, map_span);
    }
  }

  if (r.num_reduce_tasks > 0) {
    const double reduce_base = map_base + map_len;
    const std::int64_t reduce_span =
        rec->add_sim_span("reduce phase", "phase", reduce_base,
                          reduce_base + r.sim_reduce_seconds, -1, 0, job_span);
    if (d.reduce_slices != nullptr) {
      for (const TaskSlice& s : *d.reduce_slices) {
        trace_impl::emit_slice(*rec, "reduce", s, reduce_base, reduce_span,
                               d.reduce_notes, /*is_map=*/false);
        if (s.kind == TaskSlice::Kind::kAttempt &&
            d.reduce_costs != nullptr &&
            static_cast<std::size_t>(s.task) < d.reduce_costs->size()) {
          const ReduceAttemptBreakdown b = reduce_attempt_breakdown(
              config, (*d.reduce_costs)[static_cast<std::size_t>(s.task)],
              s.node);
          const char* names[3] = {"shuffle", "reduce", "write"};
          double parts[3] = {b.shuffle, b.cpu, b.write};
          trace_impl::emit_breakdown(*rec, s, reduce_base, reduce_span,
                                     "reduce-detail", names, parts,
                                     b.startup);
        }
      }
    }
    if (d.reduce_events != nullptr) {
      for (const SchedulerEvent& e : *d.reduce_events) {
        rec->add_sim_instant("node blacklisted", "scheduler",
                             reduce_base + e.when, e.node, 0);
      }
    }
  }

  rec->set_sim_cursor(base + r.sim_seconds);
}

}  // namespace gepeto::mr::detail
