#include "mapreduce/scheduler.h"

#include <algorithm>
#include <queue>

namespace gepeto::mr {

namespace {

/// A free task slot becoming available at virtual time `when` on `node`.
struct SlotEvent {
  double when;
  int node;
  int slot;
  bool operator>(const SlotEvent& o) const {
    if (when != o.when) return when > o.when;
    if (node != o.node) return node > o.node;  // deterministic tie-break
    return slot > o.slot;
  }
};

using SlotQueue =
    std::priority_queue<SlotEvent, std::vector<SlotEvent>, std::greater<>>;

/// Fraction of the attempt duration consumed before an injected failure is
/// detected (a crashed task occupied its slot for part of its runtime).
constexpr double kFailedAttemptFraction = 0.5;

/// Which nodes the jobtracker may assign work to, plus Hadoop-style
/// tasktracker blacklisting: failed attempts are charged to the node they ran
/// on, and a node reaching `blacklist_after_failures` is dropped from the
/// phase. The last usable node is never blacklisted so the phase can always
/// finish (Hadoop likewise refuses to blacklist the whole cluster).
class NodePool {
 public:
  NodePool(const ClusterConfig& config, const std::vector<int>& excluded)
      : config_(config),
        usable_(static_cast<std::size_t>(config.num_worker_nodes), true),
        failures_(static_cast<std::size_t>(config.num_worker_nodes), 0) {
    for (int n : excluded)
      if (n >= 0 && n < config.num_worker_nodes)
        usable_[static_cast<std::size_t>(n)] = false;
    usable_count_ = static_cast<int>(
        std::count(usable_.begin(), usable_.end(), true));
    GEPETO_CHECK_MSG(usable_count_ > 0,
                     "every worker node is excluded from scheduling");
  }

  bool usable(int node) const {
    return usable_[static_cast<std::size_t>(node)];
  }

  int blacklisted() const { return blacklisted_; }

  SlotQueue make_slots(int slots_per_node) const {
    SlotQueue q;
    for (int n = 0; n < config_.num_worker_nodes; ++n) {
      if (!usable(n)) continue;
      for (int s = 0; s < slots_per_node; ++s) q.push({0.0, n, s});
    }
    return q;
  }

  /// Record one failed attempt on `node`; may blacklist it. Returns true
  /// when this failure tipped the node over the blacklist threshold, so the
  /// caller can log a timestamped scheduler event.
  bool attempt_failed_on(int node) {
    ++failures_[static_cast<std::size_t>(node)];
    if (config_.blacklist_after_failures <= 0) return false;
    if (!usable(node) || usable_count_ <= 1) return false;
    if (failures_[static_cast<std::size_t>(node)] <
        config_.blacklist_after_failures)
      return false;
    usable_[static_cast<std::size_t>(node)] = false;
    --usable_count_;
    ++blacklisted_;
    return true;
  }

 private:
  const ClusterConfig& config_;
  std::vector<bool> usable_;
  std::vector<int> failures_;
  int usable_count_ = 0;
  int blacklisted_ = 0;
};

}  // namespace

Locality locality_of(const ClusterConfig& config,
                     const std::vector<int>& replicas, int node) {
  for (int r : replicas)
    if (r == node) return Locality::kDataLocal;
  for (int r : replicas)
    if (config.rack_of(r) == config.rack_of(node)) return Locality::kRackLocal;
  return Locality::kRemote;
}

MapAttemptBreakdown map_attempt_breakdown(const ClusterConfig& config,
                                          const MapTaskCost& t, int node) {
  const double spd = config.speed_of(node);
  const double bytes = static_cast<double>(t.input_bytes);
  double read = bytes / config.disk_bandwidth_Bps;  // the replica's disk
  switch (locality_of(config, t.replica_nodes, node)) {
    case Locality::kDataLocal:
      break;
    case Locality::kRackLocal:
      read += bytes / config.intra_rack_Bps;
      break;
    case Locality::kRemote:
      read += bytes / config.inter_rack_Bps;
      break;
  }
  MapAttemptBreakdown b;
  b.startup = config.task_startup_seconds * spd;
  b.read = read * spd;
  b.cpu = t.cpu_seconds * config.compute_scale * spd;
  // Map output spills to the local disk (fetched later by reducers).
  b.spill =
      static_cast<double>(t.output_bytes) / config.disk_bandwidth_Bps * spd;
  return b;
}

ReduceAttemptBreakdown reduce_attempt_breakdown(const ClusterConfig& config,
                                                const ReduceTaskCost& t,
                                                int node) {
  const double spd = config.speed_of(node);
  double shuffle = 0.0;
  for (const auto& [map_node, bytes] : t.shuffle_from) {
    const double b = static_cast<double>(bytes);
    shuffle += b / config.disk_bandwidth_Bps;  // read the map spill
    if (map_node == node) {
      // local fetch: no network hop
    } else if (config.rack_of(map_node) == config.rack_of(node)) {
      shuffle += b / config.intra_rack_Bps;
    } else {
      shuffle += b / config.inter_rack_Bps;
    }
  }
  // Output is written back to the DFS through the replica pipeline.
  const double out = static_cast<double>(t.output_bytes);
  ReduceAttemptBreakdown b;
  b.startup = config.task_startup_seconds * spd;
  b.shuffle = shuffle * spd;
  b.cpu = t.cpu_seconds * config.compute_scale * spd;
  b.write =
      (out / config.disk_bandwidth_Bps + out / config.intra_rack_Bps) * spd;
  return b;
}

double map_attempt_seconds(const ClusterConfig& config, const MapTaskCost& t,
                           int node) {
  return map_attempt_breakdown(config, t, node).total();
}

double reduce_attempt_seconds(const ClusterConfig& config,
                              const ReduceTaskCost& t, int node) {
  return reduce_attempt_breakdown(config, t, node).total();
}

MapSchedule schedule_map_phase(const ClusterConfig& config,
                               const std::vector<MapTaskCost>& tasks,
                               const std::vector<int>& excluded_nodes) {
  config.validate();
  MapSchedule out;
  out.assigned_node.assign(tasks.size(), -1);
  if (tasks.empty()) return out;

  NodePool pool(config, excluded_nodes);

  // Remaining injected failures per task.
  std::vector<int> failures_left(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i)
    failures_left[i] = tasks[i].failed_attempts;

  std::vector<bool> done(tasks.size(), false);
  std::vector<double> task_finish(tasks.size(), 0.0);
  std::vector<int> attempt_no(tasks.size(), 0);
  std::size_t remaining = tasks.size();

  SlotQueue slots = pool.make_slots(config.map_slots_per_node);
  double makespan = 0.0;

  auto rank_of = [&](std::size_t task, int node) {
    if (!config.locality_aware_scheduling) return 0;  // ablation: blind
    switch (locality_of(config, tasks[task].replica_nodes, node)) {
      case Locality::kDataLocal: return 0;
      case Locality::kRackLocal: return 1;
      default: return 2;
    }
  };

  while (remaining > 0) {
    // Drain every slot that frees at the same instant, then match tasks to
    // slots greedily by locality across the whole batch — this is what the
    // jobtracker effectively does when several tasktrackers heartbeat with
    // free slots (and at t=0, when all slots are free at once). Slots of
    // nodes blacklisted since their event was queued are dropped for good.
    GEPETO_CHECK(!slots.empty());
    const double now = slots.top().when;
    std::vector<SlotEvent> free_slots;
    while (!slots.empty() && slots.top().when == now) {
      if (pool.usable(slots.top().node)) free_slots.push_back(slots.top());
      slots.pop();
    }
    if (free_slots.empty()) continue;

    std::vector<bool> slot_used(free_slots.size(), false);
    std::size_t slots_left = free_slots.size();
    while (slots_left > 0 && remaining > 0) {
      // Best (task, slot) pair by locality rank; ties broken by lowest task
      // index then lowest node id — deterministic.
      int best_rank = 4;
      std::size_t best_task = 0, best_slot = 0;
      for (std::size_t i = 0; i < tasks.size() && best_rank > 0; ++i) {
        if (done[i]) continue;
        for (std::size_t s = 0; s < free_slots.size(); ++s) {
          if (slot_used[s] || !pool.usable(free_slots[s].node)) continue;
          const int r = rank_of(i, free_slots[s].node);
          if (r < best_rank) {
            best_rank = r;
            best_task = i;
            best_slot = s;
            if (r == 0) break;
          }
        }
      }
      if (best_rank == 4) break;  // every remaining slot was blacklisted
      slot_used[best_slot] = true;
      --slots_left;
      const SlotEvent ev = free_slots[best_slot];
      const double duration =
          map_attempt_seconds(config, tasks[best_task], ev.node);
      const Locality loc =
          locality_of(config, tasks[best_task].replica_nodes, ev.node);
      TaskSlice slice;
      slice.task = static_cast<int>(best_task);
      slice.attempt = attempt_no[best_task]++;
      slice.node = ev.node;
      slice.slot = ev.slot;
      slice.start = ev.when;
      slice.locality = loc;
      if (failures_left[best_task] > 0) {
        // The attempt crashes partway through; the slot frees early and the
        // task goes back to the pending pool (Hadoop re-schedules it, often
        // on a different node since this slot now trails others in time).
        --failures_left[best_task];
        slice.kind = TaskSlice::Kind::kFailedAttempt;
        slice.finish = ev.when + duration * kFailedAttemptFraction;
        out.slices.push_back(slice);
        if (pool.attempt_failed_on(ev.node))
          out.events.push_back(
              {SchedulerEvent::Kind::kBlacklist, ev.node, slice.finish});
        if (pool.usable(ev.node))
          slots.push({ev.when + duration * kFailedAttemptFraction, ev.node,
                      ev.slot});
        continue;
      }
      done[best_task] = true;
      --remaining;
      out.assigned_node[best_task] = ev.node;
      switch (loc) {
        case Locality::kDataLocal: ++out.data_local; break;
        case Locality::kRackLocal: ++out.rack_local; break;
        case Locality::kRemote: ++out.remote; break;
      }
      const double finish = ev.when + duration;
      slice.finish = finish;
      out.slices.push_back(slice);
      task_finish[best_task] = finish;
      makespan = std::max(makespan, finish);
      slots.push({finish, ev.node, ev.slot});
    }
    // Unused slots from this instant rejoin the pool at the next event time
    // (they idle until more tasks or the phase ends).
    if (remaining > 0 && slots_left > 0) {
      GEPETO_CHECK(!slots.empty());
      const double next = slots.top().when;
      for (std::size_t s = 0; s < free_slots.size(); ++s)
        if (!slot_used[s] && pool.usable(free_slots[s].node))
          slots.push({next, free_slots[s].node, free_slots[s].slot});
    }
  }

  // --- speculative execution (Hadoop backup tasks) -------------------------
  // With no pending work left, slots that free before the phase ends launch
  // backup copies of the slowest still-running attempts; a task completes
  // when either attempt does (the loser is killed).
  if (config.speculative_execution && !tasks.empty()) {
    std::vector<bool> speculated(tasks.size(), false);
    while (!slots.empty()) {
      const SlotEvent ev = slots.top();
      slots.pop();
      if (!pool.usable(ev.node)) continue;  // blacklisted: no backups either
      // The slowest still-running, not-yet-backed-up task at this instant.
      std::size_t best = tasks.size();
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (speculated[i] || task_finish[i] <= ev.when) continue;
        if (best == tasks.size() || task_finish[i] > task_finish[best])
          best = i;
      }
      if (best == tasks.size()) continue;  // nothing left worth backing up
      speculated[best] = true;
      ++out.speculative_copies;
      const double copy_finish =
          ev.when + map_attempt_seconds(config, tasks[best], ev.node);
      TaskSlice slice;
      slice.task = static_cast<int>(best);
      slice.attempt = attempt_no[best]++;
      slice.node = ev.node;
      slice.slot = ev.slot;
      slice.start = ev.when;
      slice.kind = TaskSlice::Kind::kSpeculative;
      slice.locality =
          locality_of(config, tasks[best].replica_nodes, ev.node);
      if (copy_finish < task_finish[best]) {
        ++out.speculative_wins;
        task_finish[best] = copy_finish;
        slice.won = true;
      }
      // The losing copy is killed when the winner finishes, so both the
      // backup slice and the slot end at the task's final finish time.
      slice.finish = task_finish[best];
      out.slices.push_back(slice);
      // The slot frees when the task completes (the losing copy is killed).
      slots.push({task_finish[best], ev.node, ev.slot});
    }
    makespan = 0.0;
    for (double f : task_finish) makespan = std::max(makespan, f);
  }

  out.makespan = makespan;
  out.blacklisted_nodes = pool.blacklisted();
  return out;
}

ReduceSchedule schedule_reduce_phase(const ClusterConfig& config,
                                     const std::vector<ReduceTaskCost>& tasks,
                                     const std::vector<int>& excluded_nodes) {
  config.validate();
  ReduceSchedule out;
  out.assigned_node.assign(tasks.size(), -1);
  if (tasks.empty()) return out;

  NodePool pool(config, excluded_nodes);

  std::vector<int> failures_left(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i)
    failures_left[i] = tasks[i].failed_attempts;

  SlotQueue slots = pool.make_slots(config.reduce_slots_per_node);
  double makespan = 0.0;
  std::size_t next_task = 0;
  std::vector<int> attempt_no(tasks.size(), 0);
  std::vector<std::size_t> retry;  // failed tasks awaiting re-execution

  while (next_task < tasks.size() || !retry.empty()) {
    GEPETO_CHECK(!slots.empty());
    SlotEvent ev = slots.top();
    slots.pop();
    if (!pool.usable(ev.node)) continue;  // blacklisted since it was queued

    std::size_t ti;
    if (!retry.empty()) {
      ti = retry.back();
      retry.pop_back();
    } else {
      ti = next_task++;
    }

    const double duration = reduce_attempt_seconds(config, tasks[ti], ev.node);
    TaskSlice slice;
    slice.task = static_cast<int>(ti);
    slice.attempt = attempt_no[ti]++;
    slice.node = ev.node;
    slice.slot = ev.slot;
    slice.start = ev.when;
    if (failures_left[ti] > 0) {
      --failures_left[ti];
      retry.push_back(ti);
      slice.kind = TaskSlice::Kind::kFailedAttempt;
      slice.finish = ev.when + duration * kFailedAttemptFraction;
      out.slices.push_back(slice);
      if (pool.attempt_failed_on(ev.node))
        out.events.push_back(
            {SchedulerEvent::Kind::kBlacklist, ev.node, slice.finish});
      if (pool.usable(ev.node))
        slots.push({ev.when + duration * kFailedAttemptFraction, ev.node,
                    ev.slot});
      continue;
    }
    out.assigned_node[ti] = ev.node;
    const double finish = ev.when + duration;
    slice.finish = finish;
    out.slices.push_back(slice);
    makespan = std::max(makespan, finish);
    slots.push({finish, ev.node, ev.slot});
  }

  out.makespan = makespan;
  out.blacklisted_nodes = pool.blacklisted();
  return out;
}

}  // namespace gepeto::mr
