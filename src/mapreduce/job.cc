#include "mapreduce/job.h"

namespace gepeto::mr {

void JobResult::absorb(const JobResult& next) {
  num_map_tasks += next.num_map_tasks;
  num_reduce_tasks += next.num_reduce_tasks;
  input_bytes += next.input_bytes;
  map_input_records += next.map_input_records;
  map_output_records += next.map_output_records;
  map_output_bytes += next.map_output_bytes;
  combine_output_records += next.combine_output_records;
  shuffle_bytes += next.shuffle_bytes;
  reduce_input_groups += next.reduce_input_groups;
  output_records = next.output_records;  // pipeline: last job's output counts
  output_bytes = next.output_bytes;
  data_local_maps += next.data_local_maps;
  rack_local_maps += next.rack_local_maps;
  remote_maps += next.remote_maps;
  failed_task_attempts += next.failed_task_attempts;
  speculative_copies += next.speculative_copies;
  speculative_wins += next.speculative_wins;
  real_seconds += next.real_seconds;
  sim_startup_seconds += next.sim_startup_seconds;
  sim_map_seconds += next.sim_map_seconds;
  sim_reduce_seconds += next.sim_reduce_seconds;
  sim_seconds += next.sim_seconds;
  for (const auto& [k, v] : next.counters) counters[k] += v;
}

}  // namespace gepeto::mr
