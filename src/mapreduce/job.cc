#include "mapreduce/job.h"

#include <sstream>

#include "common/random.h"

namespace gepeto::mr {

namespace {

const char* kind_name(JobError::Kind kind) {
  switch (kind) {
    case JobError::Kind::kAttemptsExhausted: return "attempts exhausted";
    case JobError::Kind::kSkipBudgetExhausted: return "skip budget exhausted";
    case JobError::Kind::kDataLoss: return "data loss";
    case JobError::Kind::kTooManyFailedTasks: return "too many failed tasks";
    case JobError::Kind::kCorruptCheckpoint: return "corrupt checkpoint";
    case JobError::Kind::kInvalidConfig: return "invalid configuration";
  }
  return "unknown";
}

std::string format_job_error(JobError::Kind kind, const std::string& job_name,
                             int phase, int task_index, int attempts,
                             const std::string& detail) {
  std::ostringstream os;
  os << "job '" << job_name << "' failed (" << kind_name(kind) << ")";
  if (task_index >= 0) {
    os << ": " << (phase == 2 ? "reduce" : "map") << " task " << task_index;
    if (attempts > 0) os << " after " << attempts << " attempt(s)";
  }
  if (!detail.empty()) os << " — " << detail;
  return os.str();
}

}  // namespace

JobError::JobError(Kind kind, std::string job_name, int phase, int task_index,
                   int attempts, const std::string& detail)
    : std::runtime_error(format_job_error(kind, job_name, phase, task_index,
                                          attempts, detail)),
      kind_(kind),
      job_name_(std::move(job_name)),
      phase_(phase),
      task_index_(task_index),
      attempts_(attempts) {}

JobError::JobError(const JobError& cause, const std::string& message_suffix)
    : std::runtime_error(std::string(cause.what()) + message_suffix),
      kind_(cause.kind_),
      job_name_(cause.job_name_),
      phase_(cause.phase_),
      task_index_(cause.task_index_),
      attempts_(cause.attempts_) {}

bool FaultPlan::crashes_attempt(int phase, int task, int attempt) const {
  for (const auto& c : crashes)
    if (c.phase == phase && c.task == task && c.attempt == attempt) return true;
  if (attempt_crash_prob > 0.0) {
    // One independent draw per (phase, task, attempt) coordinate: the outcome
    // never depends on how host threads interleave the attempts.
    Rng rng(seed ^ (static_cast<std::uint64_t>(phase) * 0x9e3779b97f4a7c15ULL) ^
            (static_cast<std::uint64_t>(task) * 0xA24BAED4963EE407ULL) ^
            ((static_cast<std::uint64_t>(attempt) + 1) *
             0xD6E8FEB86659FD93ULL));
    return rng.chance(attempt_crash_prob);
  }
  return false;
}

const FaultPlan::ProcessFault* FaultPlan::process_fault_for(int phase, int task,
                                                            int attempt) const {
  for (const auto& f : process_faults)
    if (f.phase == phase && f.task == task && f.attempt == attempt) return &f;
  return nullptr;
}

bool FaultPlan::poisons_record(std::string_view record) const {
  if (poison_modulus == 0) return false;
  // FNV-1a over the record bytes, perturbed by the plan seed. Hashing content
  // (not task coordinates) keeps the poison set invariant under re-chunking.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (unsigned char c : record) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h % poison_modulus == 0;
}

void JobResult::absorb(const JobResult& next) {
  num_map_tasks += next.num_map_tasks;
  num_reduce_tasks += next.num_reduce_tasks;
  input_bytes += next.input_bytes;
  map_input_records += next.map_input_records;
  map_output_records += next.map_output_records;
  map_output_bytes += next.map_output_bytes;
  combine_output_records += next.combine_output_records;
  shuffle_bytes += next.shuffle_bytes;
  spill_runs += next.spill_runs;
  disk_spill_runs += next.disk_spill_runs;
  disk_spill_bytes += next.disk_spill_bytes;
  reduce_input_groups += next.reduce_input_groups;
  output_records = next.output_records;  // pipeline: last job's output counts
  output_bytes = next.output_bytes;
  data_local_maps += next.data_local_maps;
  rack_local_maps += next.rack_local_maps;
  remote_maps += next.remote_maps;
  failed_task_attempts += next.failed_task_attempts;
  speculative_copies += next.speculative_copies;
  speculative_wins += next.speculative_wins;
  failed_tasks += next.failed_tasks;
  skipped_records += next.skipped_records;
  blacklisted_nodes += next.blacklisted_nodes;
  lost_chunks += next.lost_chunks;
  worker_deaths += next.worker_deaths;
  worker_respawns += next.worker_respawns;
  worker_recovery_seconds += next.worker_recovery_seconds;
  real_seconds += next.real_seconds;
  sort_seconds += next.sort_seconds;
  merge_seconds += next.merge_seconds;
  external_merge_seconds += next.external_merge_seconds;
  map_parse_seconds += next.map_parse_seconds;
  map_compute_seconds += next.map_compute_seconds;
  sim_startup_seconds += next.sim_startup_seconds;
  sim_map_seconds += next.sim_map_seconds;
  sim_reduce_seconds += next.sim_reduce_seconds;
  sim_recovery_seconds += next.sim_recovery_seconds;
  sim_seconds += next.sim_seconds;
  for (const auto& [k, v] : next.counters) counters[k] += v;
}

}  // namespace gepeto::mr
