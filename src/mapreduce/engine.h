// The MapReduce execution engine.
//
// Jobs are expressed as Hadoop-style Mapper / Reducer / Combiner classes,
// but typed and checked at compile time:
//
//   struct MyMapper {
//     using OutKey = int;                 // intermediate key type
//     using OutValue = double;            // intermediate value type
//     void setup(TaskContext& ctx);       // optional
//     void map(std::int64_t offset, std::string_view line,
//              MapContext<OutKey, OutValue>& ctx);
//     void cleanup(MapContext<OutKey, OutValue>& ctx);  // optional
//   };
//
//   struct MyReducer {
//     void setup(TaskContext& ctx);       // optional
//     void reduce(const int& key, std::span<const double> values,
//                 ReduceContext& ctx);    // ctx.write(line) -> DFS text
//   };
//
//   struct MyCombiner {                   // optional, same shape as reduce
//     void combine(const int& key, std::span<const double> values,
//                  MapContext<int, double>& ctx);
//   };
//
// run_mapreduce_job() executes one job: one map task per DFS chunk of the
// input, executed for real on host threads. The shuffle stays off the copy
// path: mappers hash-partition *at emit time* into R per-partition spill
// buffers (bytes accounted as they are emitted), each spill is sorted once
// (optionally combined) and laid out as a SortedRun — keys and values in two
// parallel arrays — and every reducer k-way-merges its sorted runs with a
// loser tree (merge.h), stable by (map-task index, emission order). Reduce
// groups are spans into the merged run's contiguous value storage: no
// per-group copies, and retried reduce attempts re-iterate the same run.
// Reduce output is written back to the DFS as text, exactly as the Hadoop
// pipeline in the paper. run_map_only_job() covers the paper's map-only jobs
// (sampling, DJ-Cluster preprocessing) where mappers write output lines
// directly.
//
// Failures are *experienced*, not just billed: task code may throw TaskError
// (and JobConfig::fault_plan can deterministically crash chosen attempts);
// the engine discards the attempt's partial output — each attempt gets a
// fresh mapper/reducer and a fresh context — and re-executes the task up to
// FailurePolicy::max_attempts times. Hadoop's skip mode, the failed-task
// tolerance fraction, mid-job datanode death with DFS re-replication, and
// tasktracker blacklisting in the virtual schedule are all modeled; a job
// that cannot be saved raises a structured JobError instead of aborting.
//
// Every job also produces a simulated cluster-clock profile via the virtual
// jobtracker in scheduler.h.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "ipc/worker_pool.h"
#include "mapreduce/dfs.h"
#include "mapreduce/engine_telemetry.h"
#include "mapreduce/job.h"
#include "mapreduce/merge.h"
#include "mapreduce/process_backend.h"
#include "mapreduce/record_io.h"
#include "mapreduce/scheduler.h"
#include "mapreduce/seqfile.h"
#include "storage/spill.h"

namespace gepeto::mr {

/// Per-task services available to mappers and reducers: the DFS (for the
/// distributed cache), the job configuration, and task-local counters.
class TaskContext {
 public:
  TaskContext(const Dfs& dfs, const JobConfig& job, int task_index)
      : dfs_(dfs), job_(job), task_index_(task_index) {}

  const Dfs& dfs() const { return dfs_; }
  const JobConfig& job() const { return job_; }
  int task_index() const { return task_index_; }

  /// Read a distributed-cache file (must be listed in job.cache_files).
  std::string_view cache_file(const std::string& path) const {
    GEPETO_CHECK_MSG(std::find(job_.cache_files.begin(),
                               job_.cache_files.end(),
                               path) != job_.cache_files.end(),
                     "file not in the distributed cache: " << path);
    return dfs_.read(path);
  }

  void increment(const std::string& counter, std::int64_t by = 1) {
    counters_[counter] += by;
  }

  const Counters& counters() const { return counters_; }

  /// Compute-time attribution: mappers that hand work to batch kernels
  /// (geo/kernels.h) accumulate the kernel wall time here; the engine
  /// reports it as mr_map_compute_seconds and attributes the rest of the
  /// map loop (record decode, parsing, emit) to mr_map_parse_seconds.
  void add_compute_seconds(double seconds) { compute_seconds_ += seconds; }
  double compute_seconds() const { return compute_seconds_; }

 private:
  const Dfs& dfs_;
  const JobConfig& job_;
  int task_index_;
  Counters counters_;
  double compute_seconds_ = 0.0;
};

/// Context handed to map-only mappers: output lines go straight to the
/// task's DFS output part file. One context exists per *attempt*, so a
/// crashed attempt's partial output is discarded with it.
class MapOnlyContext : public TaskContext {
 public:
  using TaskContext::TaskContext;

  /// Emit one output record (a line; '\n' is appended).
  void write(std::string_view line) {
    out_.append(line);
    out_.push_back('\n');
    ++records_;
  }

  std::string& output() { return out_; }
  std::uint64_t records() const { return records_; }

 private:
  std::string out_;
  std::uint64_t records_ = 0;
};

namespace detail {

/// Which reducer partition a key belongs to (Hadoop's HashPartitioner).
/// Computed once per pair, at emit time.
template <typename K>
std::uint64_t partition_of(const K& key, int num_reducers) {
  if (num_reducers == 1) return 0;  // fast path: nothing to hash
  std::uint64_t h;
  if constexpr (requires(const K& k) { k.partition_hash(); }) {
    h = key.partition_hash();
  } else {
    h = static_cast<std::uint64_t>(std::hash<K>{}(key));
  }
  // Mix: std::hash of integers is often identity; avoid modulo bias patterns.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h % static_cast<std::uint64_t>(num_reducers);
}

}  // namespace detail

/// Context handed to mappers (and combiners) of full map-reduce jobs.
/// Attempt-scoped, like MapOnlyContext. The context owns one spill buffer
/// per reducer partition: emit() routes each pair to its partition and
/// accounts its serialized bytes as it lands, so neither a redistribution
/// pass nor a byte-counting pass ever re-walks the map output.
///
/// Under a sort memory budget (enable_spill), the moment the task's total
/// pending bytes (across all partitions) reach the budget, every non-empty
/// partition buffer is stable-sorted and appended to its scratch file as one
/// sorted disk run — Hadoop's sort-and-spill pass — bounding the whole
/// task's buffer memory by the budget regardless of the reducer count;
/// take_partition() then hands back disk runs + the sorted in-memory tail.
/// spill_bytes() is accounted at emit and never reset by a flush, so shuffle
/// accounting — and with it the simulated schedule — is identical at any
/// budget.
template <typename K, typename V>
class MapContext : public TaskContext {
 public:
  /// The spill-file format serializes pairs with ipc::wire; non-wireable
  /// intermediates keep the unbudgeted in-memory path (enforced at job
  /// submission), and none of the disk machinery is instantiated for them.
  static constexpr bool kSpillable =
      ipc::wire::WireSerializable<K> && ipc::wire::WireSerializable<V>;

  MapContext(const Dfs& dfs, const JobConfig& job, int task_index,
             int num_partitions)
      : TaskContext(dfs, job, task_index),
        spills_(static_cast<std::size_t>(num_partitions)),
        spill_bytes_(static_cast<std::size_t>(num_partitions), 0),
        pending_bytes_(static_cast<std::size_t>(num_partitions), 0) {}

  /// Arm out-of-core spilling: when the task's pending buffers reach
  /// `budget_bytes` in total, every partition flushes one sorted run to
  /// `<stem>-p<partition>.run`.
  void enable_spill(std::uint64_t budget_bytes, std::string stem) {
    spill_budget_ = budget_bytes;
    spill_stem_ = std::move(stem);
    writers_.resize(spills_.size());
    disk_runs_.resize(spills_.size());
  }

  void emit(K key, V value) {
    const std::size_t p =
        spills_.size() == 1
            ? 0
            : static_cast<std::size_t>(detail::partition_of(
                  key, static_cast<int>(spills_.size())));
    const std::uint64_t bytes = approx_bytes(key) + approx_bytes(value);
    spill_bytes_[p] += bytes;
    pending_bytes_[p] += bytes;
    total_pending_ += bytes;
    spills_[p].emplace_back(std::move(key), std::move(value));
    ++emitted_records_;
    if constexpr (kSpillable) {
      if (spill_budget_ > 0 && total_pending_ >= spill_budget_) flush_all();
    }
  }

  /// Partition `p`'s spill buffer, pairs in emission order.
  std::vector<std::pair<K, V>>& spill(std::size_t p) { return spills_[p]; }
  /// Serialized bytes accumulated in partition `p`, accounted at emit
  /// (cumulative: never reset by a disk flush).
  std::uint64_t spill_bytes(std::size_t p) const { return spill_bytes_[p]; }

  /// Take partition `p`'s complete output: disk runs in spill order plus the
  /// stable-sorted in-memory tail. Closes the partition's spill file so
  /// other processes can read it. With no budget (or nothing flushed) the
  /// result is tail-only — exactly the old in-memory shuffle.
  storage::PartitionRuns<K, V> take_partition(std::size_t p) {
    storage::PartitionRuns<K, V> pr;
    detail::sort_pairs(spills_[p]);
    pr.tail = detail::split_pairs(std::move(spills_[p]));
    if constexpr (kSpillable) {
      if (p < writers_.size() && writers_[p] != nullptr) {
        writers_[p]->close();
        pr.file = writers_[p]->path();
        pr.disk_runs = std::move(disk_runs_[p]);
        writers_[p].reset();
      }
    }
    return pr;
  }

  std::uint64_t emitted_records() const { return emitted_records_; }
  std::uint64_t emitted_bytes() const {
    std::uint64_t b = 0;
    for (const auto x : spill_bytes_) b += x;
    return b;
  }

  /// Disk-spill activity of this attempt (runs written, file bytes, wall
  /// seconds sorting + writing them).
  std::uint64_t disk_spill_runs() const { return disk_spill_runs_; }
  std::uint64_t disk_spill_bytes() const { return disk_spill_bytes_; }
  double spill_seconds() const { return spill_seconds_; }

 private:
  /// One sort-and-spill pass: flush every non-empty partition buffer as one
  /// sorted disk run (partition order, for determinism).
  void flush_all() {
    for (std::size_t p = 0; p < spills_.size(); ++p) flush_partition(p);
    total_pending_ = 0;
  }

  void flush_partition(std::size_t p) {
    if (spills_[p].empty()) return;
    Stopwatch sw;
    detail::sort_pairs(spills_[p]);
    if (writers_[p] == nullptr)
      writers_[p] = std::make_unique<storage::SpillFileWriter<K, V>>(
          spill_stem_ + "-p" + std::to_string(p) + ".run");
    const storage::RunMeta meta = writers_[p]->append_run(spills_[p]);
    disk_runs_[p].push_back(meta);
    disk_spill_bytes_ += meta.bytes;
    ++disk_spill_runs_;
    spills_[p].clear();
    pending_bytes_[p] = 0;
    spill_seconds_ += sw.seconds();
  }

  std::vector<std::vector<std::pair<K, V>>> spills_;
  std::vector<std::uint64_t> spill_bytes_;
  std::vector<std::uint64_t> pending_bytes_;  // in-memory share of spill_bytes_
  std::uint64_t total_pending_ = 0;           // sum of pending_bytes_
  std::uint64_t emitted_records_ = 0;
  // Out-of-core spilling (armed by enable_spill; empty otherwise).
  std::uint64_t spill_budget_ = 0;
  std::string spill_stem_;
  std::vector<std::unique_ptr<storage::SpillFileWriter<K, V>>> writers_;
  std::vector<std::vector<storage::RunMeta>> disk_runs_;
  std::uint64_t disk_spill_runs_ = 0;
  std::uint64_t disk_spill_bytes_ = 0;
  double spill_seconds_ = 0.0;
};

/// Context handed to reducers; output lines form the job's DFS output.
/// Attempt-scoped, like MapOnlyContext.
class ReduceContext : public TaskContext {
 public:
  using TaskContext::TaskContext;

  void write(std::string_view line) {
    out_.append(line);
    out_.push_back('\n');
    ++records_;
  }

  std::string& output() { return out_; }
  std::uint64_t records() const { return records_; }

 private:
  std::string out_;
  std::uint64_t records_ = 0;
};

namespace detail {

/// One map task = one chunk of one input file.
struct SplitDesc {
  std::string path;
  std::size_t chunk_index;
};

inline std::vector<SplitDesc> gather_splits(const Dfs& dfs,
                                            const std::string& input) {
  std::vector<SplitDesc> splits;
  const auto paths = dfs.list(input);
  GEPETO_CHECK_MSG(!paths.empty(), "no input files under '" << input << "'");
  for (const auto& p : paths) {
    const auto& chunks = dfs.chunks(p);
    for (std::size_t c = 0; c < chunks.size(); ++c) splits.push_back({p, c});
  }
  return splits;
}

/// Deterministic injected-failure count for task `index` of a job: the first
/// N attempts crash, the next succeeds. Capped at max_attempts - 1 so that
/// probabilistic injection alone never sinks a job (as in Hadoop, where four
/// attempts virtually always suffice); driving a task to exhaustion — and a
/// JobError — takes explicit FaultPlan::crashes entries.
inline int injected_failures(const JobConfig& job, std::uint64_t seed,
                             std::uint64_t phase, std::uint64_t index) {
  if (job.failures.task_failure_prob <= 0.0) return 0;
  Rng rng(seed ^ (phase * 0x9e3779b97f4a7c15ULL) ^
          std::hash<std::string>{}(job.name) ^ (index * 0xA24BAED4963EE407ULL));
  int failures = 0;
  while (failures < job.failures.max_attempts - 1 &&
         rng.chance(job.failures.task_failure_prob)) {
    ++failures;
  }
  return failures;
}

template <typename Task, typename Ctx>
void maybe_setup(Task& task, Ctx& ctx) {
  if constexpr (requires { task.setup(ctx); }) task.setup(ctx);
}

template <typename Task, typename Ctx>
void maybe_cleanup(Task& task, Ctx& ctx) {
  if constexpr (requires { task.cleanup(ctx); }) task.cleanup(ctx);
}

inline std::string part_name(const std::string& dir, const char* kind, int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/part-%s-%05d", kind, i);
  return dir + buf;
}

/// Simulated time to seed the distributed cache onto every worker node: the
/// replicas serve the file to the cluster in parallel waves.
inline double cache_distribution_seconds(const Dfs& dfs,
                                         const ClusterConfig& config,
                                         const JobConfig& job) {
  double total = 0.0;
  for (const auto& path : job.cache_files) {
    const double bytes = static_cast<double>(dfs.file_size(path));
    const int waves =
        (config.num_worker_nodes + config.replication - 1) /
        std::max(1, config.replication);
    total += bytes / config.intra_rack_Bps * static_cast<double>(waves);
  }
  return total;
}

/// Reader policies: adapt the text and binary record readers to one
/// (key, value, overread) interface for the shared map-only driver.
struct TextRecords {
  LineRecordReader reader;
  TextRecords(std::string_view file, std::uint64_t off, std::uint64_t len)
      : reader(file, off, len) {}
  bool next() { return reader.next(); }
  std::int64_t key() const { return reader.key(); }
  std::string_view value() const { return reader.value(); }
  std::uint64_t overread_bytes() const { return reader.overread_bytes(); }
};

/// A map-only text mapper may declare that consecutive input lines form
/// logical groups that must not be cut by input-split boundaries, by
/// providing
///   bool same_group(std::string_view prev_line, std::string_view line) const;
/// returning true when `line` continues the group `prev_line` belongs to.
/// The engine then assigns every maximal run of consecutive same-group lines
/// to the split that owns the run's *first* line: that task keeps reading
/// past its split end until the chain breaks, and later splits skip their
/// leading records while the chain from the preceding line still holds —
/// the same ownership rule Hadoop's LineRecordReader applies to partial
/// lines, lifted one level up to line groups.
template <typename Mapper>
concept GroupAwareMapper =
    requires(const Mapper& m, std::string_view a, std::string_view b) {
      { m.same_group(a, b) } -> std::convertible_to<bool>;
    };

/// Batch map protocol: a record reader that can hand out whole decoded
/// batches (next_batch() / batch() / batch_first_key()) paired with a mapper
/// that consumes them (map_batch). Batch b covers the record keys
/// [batch_first_key(), batch_first_key() + batch().size()) — the same keys
/// the record-at-a-time mode assigns — so an AttemptFailure thrown from
/// map_batch is attributed to the batch's first record. The engine engages
/// this fast path only when nothing needs record granularity: no skip set,
/// no injected crash, an empty fault plan (poison records and
/// kill-at-record process faults address individual records). Both paths
/// must produce byte-identical map output.
template <typename Mapper, typename Records, typename Ctx>
concept BatchRecords = requires(Mapper& m, Records& r, Ctx& ctx) {
  { r.next_batch() } -> std::convertible_to<bool>;
  { r.batch_first_key() } -> std::convertible_to<std::int64_t>;
  m.map_batch(r.batch_first_key(), r.batch(), ctx);
};

struct BinaryRecords {
  SeqFileReader reader;
  std::int64_t index = -1;
  BinaryRecords(std::string_view file, std::uint64_t off, std::uint64_t len)
      : reader(file, off, len) {}
  bool next() {
    if (!reader.next()) return false;
    ++index;
    return true;
  }
  std::int64_t key() const { return index; }  ///< record index within split
  std::string_view value() const { return reader.record(); }
  std::uint64_t overread_bytes() const { return 0; }
};

// --- fault-tolerant task execution -----------------------------------------
// (detail::AttemptFailure lives in job.h so the process backend shares it.)

/// Outcome of one task after the retry loop.
template <typename Out>
struct TaskTry {
  Out value{};
  bool ok = false;
  int attempts = 0;                ///< attempts consumed (incl. the success)
  int crashed_attempts = 0;        ///< attempts that crashed
  std::uint64_t skipped_records = 0;
  bool skip_budget_exhausted = false;
  std::string error;               ///< why the task permanently failed
};

inline bool in_skip_set(const std::vector<std::int64_t>& skip,
                        std::int64_t key) {
  return !skip.empty() &&
         std::find(skip.begin(), skip.end(), key) != skip.end();
}

/// Execute one task with Hadoop-style retries and skip mode. `attempt` is
/// called with (records_to_skip, inject_crash, attempt_no) and must either
/// return the task's output or throw AttemptFailure; it is responsible for
/// building a fresh task object + context per call so crashed attempts leave
/// nothing behind (the attempt ordinal lets the process backend address
/// per-attempt faults and label worker requests). A record that crashes two
/// consecutive attempts is pinpointed and skipped (within
/// FailurePolicy::max_skipped_records); pinpointing counts as progress and
/// refreshes the attempt budget, as Hadoop's skip mode effectively does by
/// narrowing the bad range each re-execution.
template <typename Out, typename AttemptFn>
TaskTry<Out> run_task_attempts(const JobConfig& job, std::uint64_t seed,
                               int phase, std::size_t task,
                               AttemptFn&& attempt) {
  const int max_attempts = std::max(1, job.failures.max_attempts);
  const int injected =
      injected_failures(job, seed, static_cast<std::uint64_t>(phase), task);
  TaskTry<Out> out;
  std::vector<std::int64_t> skip;
  std::int64_t last_failed_record = -1;
  bool have_last_failed = false;
  int attempt_no = 0;       // global attempt ordinal (FaultPlan numbering)
  int since_progress = 0;   // attempts since the last pinpointed record
  for (;;) {
    const bool inject =
        attempt_no < injected ||
        job.fault_plan.crashes_attempt(phase, static_cast<int>(task),
                                       attempt_no);
    try {
      out.value = attempt(std::as_const(skip), inject, attempt_no);
      out.ok = true;
      out.attempts = attempt_no + 1;
      out.skipped_records = skip.size();
      return out;
    } catch (const AttemptFailure& f) {
      ++out.crashed_attempts;
      ++attempt_no;
      ++since_progress;
      if (job.failures.max_skipped_records > 0 && f.record >= 0 &&
          have_last_failed && f.record == last_failed_record) {
        // Two consecutive attempts died on the same record: skip it.
        if (skip.size() >= job.failures.max_skipped_records) {
          out.attempts = attempt_no;
          out.skipped_records = skip.size();
          out.skip_budget_exhausted = true;
          out.error = "skip budget exhausted at record " +
                      std::to_string(f.record) + ": " + f.message;
          return out;
        }
        skip.push_back(f.record);
        have_last_failed = false;
        since_progress = 0;
        continue;
      }
      have_last_failed = f.record >= 0;
      last_failed_record = f.record;
      if (since_progress >= max_attempts) {
        out.attempts = attempt_no;
        out.skipped_records = skip.size();
        out.error = f.message;
        return out;
      }
    }
  }
}

/// A contiguous wave of map tasks, optionally followed by datanode kills
/// from the fault plan ("after N map tasks completed" = after the first N
/// tasks by index, a deterministic barrier).
struct MapSegment {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::vector<int> kills_after;
};

inline std::vector<MapSegment> plan_map_segments(const FaultPlan& plan,
                                                 std::size_t num_tasks) {
  std::vector<std::pair<std::size_t, int>> kills;
  kills.reserve(plan.node_kills.size());
  for (const auto& k : plan.node_kills) {
    const std::size_t at =
        k.after_map_tasks < 0
            ? 0
            : std::min(num_tasks, static_cast<std::size_t>(k.after_map_tasks));
    kills.emplace_back(at, k.node);
  }
  std::stable_sort(kills.begin(), kills.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<MapSegment> segments;
  std::size_t start = 0, i = 0;
  while (i < kills.size()) {
    const std::size_t at = kills[i].first;
    MapSegment seg{start, std::max(start, at), {}};
    while (i < kills.size() && kills[i].first == at)
      seg.kills_after.push_back(kills[i++].second);
    segments.push_back(std::move(seg));
    start = segments.back().end;
  }
  segments.push_back({start, num_tasks, {}});
  return segments;
}

inline std::vector<int> dead_nodes_of(const Dfs& dfs) {
  std::vector<int> dead;
  for (int n = 0; n < dfs.config().num_worker_nodes; ++n)
    if (!dfs.node_alive(n)) dead.push_back(n);
  return dead;
}

/// Aggregate outcome of the (possibly multi-wave) map phase.
struct MapPhaseOutcome {
  double makespan = 0.0;
  double recovery_seconds = 0.0;
  std::vector<int> assigned_node;  ///< -1 for tasks that never ran
  std::vector<bool> lost;          ///< split had no live replica at its wave
  int data_local = 0;
  int rack_local = 0;
  int remote = 0;
  int speculative_copies = 0;
  int speculative_wins = 0;
  int blacklisted_nodes = 0;
  int lost_chunks = 0;
  // Telemetry: the phase's virtual timeline with waves laid out end to end
  // (slice/event times are relative to the phase start, task indices are
  // job-global), the per-task virtual costs, and the re-replication pauses
  // between waves as (start, duration).
  std::vector<TaskSlice> slices;
  std::vector<SchedulerEvent> events;
  std::vector<MapTaskCost> costs;
  std::vector<std::pair<double, double>> recovery_windows;
};

/// Run the map phase in fault-plan waves on `pool` (the process-shared pool;
/// building threads per wave was measurable overhead on iterative drivers).
/// `run_task(t)` executes task t's retry loop (filling `tries[t]`);
/// `cost_of(t)` builds that task's virtual cost from `tries[t]` afterwards
/// (replicas and failed attempts are filled in here). Between waves, the
/// chaos harness kills the planned datanodes, the namenode re-replicates
/// surviving chunks (billed to the simulated clock), and later waves
/// re-resolve replicas against the shrunk cluster.
template <typename Out, typename RunTask, typename CostOf>
MapPhaseOutcome run_map_phase(Dfs& dfs, const ClusterConfig& config,
                              const JobConfig& job,
                              const std::vector<SplitDesc>& splits,
                              std::vector<TaskTry<Out>>& tries,
                              ThreadPool& pool, RunTask&& run_task,
                              CostOf&& cost_of) {
  const std::size_t num_tasks = splits.size();
  MapPhaseOutcome out;
  out.assigned_node.assign(num_tasks, -1);
  out.lost.assign(num_tasks, false);
  out.costs.resize(num_tasks);

  std::vector<int> dead = dead_nodes_of(dfs);
  std::vector<std::vector<int>> replicas(num_tasks);

  for (const auto& seg : plan_map_segments(job.fault_plan, num_tasks)) {
    for (std::size_t t = seg.begin; t < seg.end; ++t) {
      const auto& ci = dfs.chunks(splits[t].path)[splits[t].chunk_index];
      replicas[t] = ci.replicas;
      out.lost[t] = ci.replicas.empty();
    }
    {
      std::vector<std::future<void>> futs;
      futs.reserve(seg.end - seg.begin);
      for (std::size_t t = seg.begin; t < seg.end; ++t) {
        if (out.lost[t]) continue;
        futs.push_back(pool.submit([&run_task, t] { run_task(t); }));
      }
      for (auto& f : futs) f.get();
    }

    // Virtual-time schedule of this wave; dead nodes hold no slots. A
    // permanently failed task still occupied slots with its crashed
    // attempts — the schedule models those (plus one closing attempt).
    std::vector<std::size_t> ids;
    std::vector<MapTaskCost> costs;
    for (std::size_t t = seg.begin; t < seg.end; ++t) {
      if (out.lost[t]) continue;
      MapTaskCost c = cost_of(t);
      c.replica_nodes = replicas[t];
      c.failed_attempts = tries[t].crashed_attempts;
      ids.push_back(t);
      out.costs[t] = c;
      costs.push_back(std::move(c));
    }
    const MapSchedule sched = schedule_map_phase(config, costs, dead);
    // Waves (and recovery pauses) lay out end to end on the phase timeline;
    // slices/events of this wave shift past everything accumulated so far.
    const double wave_base = out.makespan + out.recovery_seconds;
    for (TaskSlice s : sched.slices) {
      s.task = static_cast<int>(ids[static_cast<std::size_t>(s.task)]);
      s.start += wave_base;
      s.finish += wave_base;
      out.slices.push_back(s);
    }
    for (SchedulerEvent e : sched.events) {
      e.when += wave_base;
      out.events.push_back(e);
    }
    for (std::size_t i = 0; i < ids.size(); ++i)
      out.assigned_node[ids[i]] = sched.assigned_node[i];
    out.makespan += sched.makespan;
    out.data_local += sched.data_local;
    out.rack_local += sched.rack_local;
    out.remote += sched.remote;
    out.speculative_copies += sched.speculative_copies;
    out.speculative_wins += sched.speculative_wins;
    out.blacklisted_nodes += sched.blacklisted_nodes;

    // Apply this wave's datanode kills, then let the namenode recover what
    // it can from surviving replicas.
    bool killed = false;
    for (const int node : seg.kills_after) {
      if (node < 0 || node >= config.num_worker_nodes) continue;
      if (!dfs.node_alive(node)) continue;
      int live = 0;
      for (int n = 0; n < config.num_worker_nodes; ++n)
        if (dfs.node_alive(n)) ++live;
      if (live <= 1)
        throw JobError(JobError::Kind::kDataLoss, job.name, /*phase=*/1,
                       /*task_index=*/-1, /*attempts=*/0,
                       "fault plan would kill the last live datanode");
      dfs.kill_node(node);
      killed = true;
    }
    if (killed) {
      const ReReplicationReport report = dfs.re_replicate();
      out.recovery_windows.emplace_back(wave_base + sched.makespan,
                                        report.sim_seconds);
      out.recovery_seconds += report.sim_seconds;
      out.lost_chunks += static_cast<int>(report.lost.size());
      dead = dead_nodes_of(dfs);
    }
  }
  return out;
}

/// Enforce FailurePolicy::max_failed_task_fraction after the map phase.
/// Returns the number of permanently failed (tolerated) map tasks, or throws
/// JobError when the job cannot be saved.
template <typename Out>
int enforce_map_failure_policy(const JobConfig& job,
                               const std::vector<TaskTry<Out>>& tries,
                               const std::vector<bool>& lost) {
  int failed = 0;
  for (std::size_t t = 0; t < tries.size(); ++t)
    if (lost[t] || !tries[t].ok) ++failed;
  if (failed == 0) return 0;

  const int allowed = static_cast<int>(job.failures.max_failed_task_fraction *
                                       static_cast<double>(tries.size()));
  if (failed <= allowed) return failed;

  if (allowed > 0)
    throw JobError(JobError::Kind::kTooManyFailedTasks, job.name, /*phase=*/1,
                   /*task_index=*/-1, /*attempts=*/0,
                   std::to_string(failed) + " of " +
                       std::to_string(tries.size()) +
                       " map tasks failed (tolerated: " +
                       std::to_string(allowed) + ")");
  for (std::size_t t = 0; t < tries.size(); ++t) {
    if (lost[t])
      throw JobError(JobError::Kind::kDataLoss, job.name, /*phase=*/1,
                     static_cast<int>(t), /*attempts=*/0,
                     "input split lost every DFS replica");
    if (!tries[t].ok)
      throw JobError(tries[t].skip_budget_exhausted
                         ? JobError::Kind::kSkipBudgetExhausted
                         : JobError::Kind::kAttemptsExhausted,
                     job.name, /*phase=*/1, static_cast<int>(t),
                     tries[t].attempts, tries[t].error);
  }
  GEPETO_FAIL("failed-task count disagrees with per-task state");
}

template <typename Records, typename MapperFactory>
JobResult run_map_only_job_impl(Dfs& dfs, const ClusterConfig& config,
                                const JobConfig& job,
                                MapperFactory make_mapper);

}  // namespace detail

/// Run a map-only job (num_reducers is ignored; no shuffle happens). Each
/// map task writes its output lines to `output/part-m-NNNNN`.
///
/// `make_mapper` is invoked once per map task *attempt* and must return a
/// fresh mapper.
template <typename MapperFactory>
JobResult run_map_only_job(Dfs& dfs, const ClusterConfig& config,
                           const JobConfig& job, MapperFactory make_mapper) {
  return detail::run_map_only_job_impl<detail::TextRecords>(dfs, config, job,
                                                            make_mapper);
}

/// Map-only job over SequenceFile-style binary inputs (mr::SeqFileWriter
/// files in the DFS). The mapper receives (record index within the split,
/// record bytes) — the binary analogue of (line offset, line).
template <typename MapperFactory>
JobResult run_binary_map_only_job(Dfs& dfs, const ClusterConfig& config,
                                  const JobConfig& job,
                                  MapperFactory make_mapper) {
  return detail::run_map_only_job_impl<detail::BinaryRecords>(dfs, config, job,
                                                              make_mapper);
}

namespace detail {

template <typename Records, typename MapperFactory>
JobResult run_map_only_job_impl(Dfs& dfs, const ClusterConfig& config,
                                const JobConfig& job,
                                MapperFactory make_mapper) {
  detail::validate_submission(config, job);
  const telemetry::Telemetry tel = job.telemetry.or_else(dfs.telemetry());
  telemetry::WallScope wall_scope;
  if (tel.trace != nullptr)
    wall_scope = tel.trace->wall_span("job:" + job.name, "job");
  Stopwatch wall;
  JobResult result;
  result.job_name = job.name;

  const auto splits = detail::gather_splits(dfs, job.input);
  result.num_map_tasks = static_cast<int>(splits.size());
  dfs.remove_prefix(job.output + "/");

  struct TaskOut {
    std::string output;
    std::uint64_t records = 0;
    std::uint64_t input_records = 0;
    std::uint64_t input_bytes = 0;
    double cpu_seconds = 0.0;
    Counters counters;
  };
  std::vector<detail::TaskTry<TaskOut>> tries(splits.size());

  // The attempt body, shared verbatim by both backends: the thread backend
  // runs it inline, the process backend runs it inside a forked tasktracker.
  // `progress` is called with the running input-record ordinal before each
  // record — a no-op on the thread path; heartbeats and planned kill points
  // on the process path.
  auto attempt_body = [&](std::size_t t, const std::vector<std::int64_t>& skip,
                          bool inject, auto&& progress) -> TaskOut {
    CpuStopwatch cpu;
    auto mapper = make_mapper();
    using Mapper = std::decay_t<decltype(mapper)>;
    constexpr bool kGroupAware =
        std::is_same_v<Records, detail::TextRecords> &&
        detail::GroupAwareMapper<Mapper>;
    MapOnlyContext ctx(dfs, job, static_cast<int>(t));
    try {
      detail::maybe_setup(mapper, ctx);
    } catch (const TaskError& e) {
      throw detail::AttemptFailure{-1, e.what()};
    }
    const auto& ci = dfs.chunks(splits[t].path)[splits[t].chunk_index];
    const std::string_view file = dfs.read(splits[t].path);
    Records reader(file, ci.offset, ci.size);
    std::uint64_t records = 0;
    std::uint64_t ext_bytes = 0;
    std::int64_t seen = 0;
    // One record through skip mode, the fault plan's poison set, and
    // the mapper.
    auto feed = [&](std::int64_t key, std::string_view value) {
      progress(seen++);
      if (detail::in_skip_set(skip, key)) return;
      if (job.fault_plan.poisons_record(value))
        throw detail::AttemptFailure{key, "fault-plan poison record"};
      try {
        mapper.map(key, value, ctx);
      } catch (const TaskError& e) {
        throw detail::AttemptFailure{key, e.what()};
      }
      ++records;
      // An injected crash strikes after the first record so the
      // discarded attempt provably had partial output; it is not
      // attributed to the record (a machine crash, not a bad record).
      if (inject)
        throw detail::AttemptFailure{-1, "injected attempt crash"};
    };
    if constexpr (kGroupAware) {
      // Group-aware split protocol (see GroupAwareMapper): a maximal
      // run of consecutive same-group lines belongs to the split that
      // owns its first line.
      std::string_view chain_prev;
      bool skipping_lead = false;
      const std::uint64_t first = reader.reader.next_record_offset();
      if (ci.offset > 0 && first > 0 && first < file.size()) {
        chain_prev = line_ending_before(file, first);
        skipping_lead = true;
      }
      bool owned_any = false;
      while (reader.next()) {
        const std::string_view value = reader.value();
        if (skipping_lead) {
          if (mapper.same_group(chain_prev, value)) {
            chain_prev = value;
            continue;  // owned by the split that started the group
          }
          skipping_lead = false;
        }
        chain_prev = value;
        owned_any = true;
        feed(reader.key(), value);
      }
      // Finish the group our last record opened, reading past the
      // split end (possibly across several chunks) until it breaks.
      if (owned_any) {
        const std::uint64_t pos = reader.reader.next_record_offset();
        if (pos < file.size()) {
          LineRecordReader ext(file, pos, file.size() - pos);
          while (ext.next()) {
            if (!mapper.same_group(chain_prev, ext.value())) break;
            chain_prev = ext.value();
            ext_bytes += ext.value().size() + 1;
            feed(ext.key(), ext.value());
          }
        }
      }
    } else {
      while (reader.next()) feed(reader.key(), reader.value());
    }
    if (inject)  // empty / fully-skipped split: crash anyway
      throw detail::AttemptFailure{-1, "injected attempt crash"};
    try {
      detail::maybe_cleanup(mapper, ctx);
    } catch (const TaskError& e) {
      throw detail::AttemptFailure{-1, e.what()};
    }
    TaskOut out;
    out.output = std::move(ctx.output());
    out.records = ctx.records();
    out.input_records = records;
    out.input_bytes = ci.size + reader.overread_bytes() + ext_bytes;
    out.cpu_seconds =
        config.modeled_seconds_per_record > 0.0
            ? static_cast<double>(records) *
                  config.modeled_seconds_per_record
            : cpu.seconds();
    out.counters = ctx.counters();
    return out;
  };

  // Process backend: fork the tasktracker pool only after the runner exists;
  // children inherit the mapper factory, the splits and the in-memory DFS
  // read-only via copy-on-write.
  std::unique_ptr<ipc::WorkerPool> wpool;
  if (config.backend == ExecutionBackend::kProcess) {
    ipc::TaskRunner runner = [&](const ipc::TaskRequest& req,
                                 ipc::WorkerTaskContext& wctx) {
      return detail::run_child_attempt([&] {
        return detail::encode_map_only_out(attempt_body(
            static_cast<std::size_t>(req.task), req.skip, req.inject_crash,
            [&wctx](std::int64_t rec) { wctx.progress(rec); }));
      });
    };
    wpool = std::make_unique<ipc::WorkerPool>(
        detail::worker_pool_options(config, job, tel), std::move(runner));
  }

  auto run_task = [&](std::size_t t) {
    tries[t] = detail::run_task_attempts<TaskOut>(
        job, config.seed, /*phase=*/1, t,
        [&, t](const std::vector<std::int64_t>& skip, bool inject,
               int attempt_no) {
          if (wpool != nullptr) {
            return detail::remote_attempt<TaskOut>(
                *wpool, job, /*phase=*/1, t, attempt_no, skip, inject, {},
                [](std::string_view p) {
                  return detail::decode_map_only_out<TaskOut>(p);
                });
          }
          return attempt_body(t, skip, inject, [](std::int64_t) {});
        });
  };
  auto cost_of = [&](std::size_t t) {
    MapTaskCost c;
    c.input_bytes =
        tries[t].ok
            ? tries[t].value.input_bytes
            : dfs.chunks(splits[t].path)[splits[t].chunk_index].size;
    c.output_bytes = tries[t].value.output.size();
    c.cpu_seconds = tries[t].value.cpu_seconds;
    return c;
  };

  const auto pool = shared_thread_pool(config.resolved_execution_threads());
  const detail::MapPhaseOutcome phase = detail::run_map_phase<TaskOut>(
      dfs, config, job, splits, tries, *pool, run_task, cost_of);

  result.failed_tasks =
      detail::enforce_map_failure_policy(job, tries, phase.lost);

  // Merge volumes/counters and write part files of the successful tasks
  // (first replica on the node that ran the task in the schedule).
  for (std::size_t t = 0; t < splits.size(); ++t) {
    result.failed_task_attempts += tries[t].crashed_attempts;
    if (!tries[t].ok) continue;
    auto& out = tries[t].value;
    result.map_input_records += out.input_records;
    result.input_bytes += out.input_bytes;
    result.output_records += out.records;
    result.output_bytes += out.output.size();
    result.skipped_records += tries[t].skipped_records;
    for (const auto& [k, v] : out.counters) result.counters[k] += v;
    dfs.put(detail::part_name(job.output, "m", static_cast<int>(t)),
            std::move(out.output), phase.assigned_node[t]);
  }
  result.map_output_records = result.output_records;
  result.combine_output_records = result.output_records;
  if (result.skipped_records > 0)
    result.counters["SkippedRecords"] +=
        static_cast<std::int64_t>(result.skipped_records);

  result.data_local_maps = phase.data_local;
  result.rack_local_maps = phase.rack_local;
  result.remote_maps = phase.remote;
  result.speculative_copies = phase.speculative_copies;
  result.speculative_wins = phase.speculative_wins;
  result.blacklisted_nodes = phase.blacklisted_nodes;
  result.lost_chunks = phase.lost_chunks;
  result.sim_startup_seconds = config.job_startup_seconds +
                               detail::cache_distribution_seconds(dfs, config, job);
  result.sim_map_seconds = phase.makespan;
  result.sim_recovery_seconds = phase.recovery_seconds;
  result.sim_seconds = result.sim_startup_seconds + result.sim_map_seconds +
                       result.sim_recovery_seconds;

  if (wpool != nullptr) {
    // Read stats before the pool's destructor shuts workers down: clean
    // shutdown exits must not count as deaths.
    detail::absorb_worker_stats(result, wpool->stats());
    wpool.reset();
  }
  result.real_seconds = wall.seconds();

  if (tel.enabled()) {
    detail::record_job_metrics(tel.metrics, result, &phase.slices, nullptr);
    detail::JobTraceData td;
    td.map_costs = &phase.costs;
    td.map_slices = &phase.slices;
    td.map_events = &phase.events;
    td.recovery_windows = &phase.recovery_windows;
    td.map_notes.reserve(tries.size());
    for (const auto& tt : tries)
      td.map_notes.push_back({tt.attempts, tt.skipped_records, tt.ok});
    detail::record_job_trace(tel.trace, config, job, result, td);
  }
  return result;
}

}  // namespace detail

struct NoCombiner {};

namespace detail {

/// Shared implementation of the full map-reduce drivers, templated on the
/// record-reader policy (TextRecords, BinaryRecords, or a columnar policy
/// from storage/) exactly like run_map_only_job_impl.
template <typename Records, typename MapperFactory, typename ReducerFactory,
          typename CombinerFactory>
JobResult run_mapreduce_job_impl(Dfs& dfs, const ClusterConfig& config,
                                 const JobConfig& job,
                                 MapperFactory make_mapper,
                                 ReducerFactory make_reducer,
                                 CombinerFactory make_combiner) {
  using Mapper = decltype(make_mapper());
  using K = typename Mapper::OutKey;
  using V = typename Mapper::OutValue;
  constexpr bool kHasCombiner = !std::is_same_v<CombinerFactory, NoCombiner>;

  detail::validate_submission(config, job);
  GEPETO_CHECK(job.num_reducers > 0);
  GEPETO_CHECK_MSG(!job.use_combiner || kHasCombiner,
                   "job.use_combiner set but no combiner factory given");

  // The process backend ships intermediate pairs over a real socket, so K/V
  // must be wire-serializable; non-wireable types keep the thread backend and
  // get a structured error (not a compile error on unrelated drivers) when a
  // process run is requested.
  constexpr bool kWireable =
      ipc::wire::WireSerializable<K> && ipc::wire::WireSerializable<V>;
  if constexpr (!kWireable) {
    if (config.backend == ExecutionBackend::kProcess)
      throw JobError(JobError::Kind::kInvalidConfig, job.name, /*phase=*/0,
                     /*task_index=*/-1, /*attempts=*/0,
                     "process backend requires wire-serializable intermediate "
                     "key/value types (trivially copyable, std::string, or "
                     "wire_append/wire_parse members)");
  }

  // Resolve the sort memory budget: an explicit config value wins; the
  // environment ($GEPETO_SORT_MEMORY_BUDGET, e.g. the CI forced-spill leg)
  // supplies a best-effort default for jobs whose intermediates support the
  // spill-file format. An explicit budget on a non-wireable job is a
  // structured config error, not a silent no-op.
  std::uint64_t budget = job.sort_memory_budget_bytes;
  if constexpr (kWireable) {
    if (budget == 0) budget = storage::env_sort_memory_budget();
  } else {
    if (budget != 0)
      throw JobError(JobError::Kind::kInvalidConfig, job.name, /*phase=*/0,
                     /*task_index=*/-1, /*attempts=*/0,
                     "sort_memory_budget_bytes requires wire-serializable "
                     "intermediate key/value types (the spill-file format)");
  }
  // Job-scoped scratch directory for spilled runs. Created before the worker
  // pool forks (children inherit the path) and declared before it (destroyed
  // after), removed on every exit path including a thrown JobError — no
  // scratch survives the job.
  std::unique_ptr<storage::SpillScratch> scratch;
  if (budget > 0) scratch = std::make_unique<storage::SpillScratch>(job.name);

  const telemetry::Telemetry tel = job.telemetry.or_else(dfs.telemetry());
  telemetry::WallScope wall_scope;
  if (tel.trace != nullptr)
    wall_scope = tel.trace->wall_span("job:" + job.name, "job");
  Stopwatch wall;
  JobResult result;
  result.job_name = job.name;

  const auto splits = detail::gather_splits(dfs, job.input);
  result.num_map_tasks = static_cast<int>(splits.size());
  result.num_reduce_tasks = job.num_reducers;
  dfs.remove_prefix(job.output + "/");

  const int R = job.num_reducers;

  struct MapOut {
    // Per reducer partition: the sorted disk runs spilled under the memory
    // budget plus the sorted in-memory tail (budget 0 => tail only, the old
    // fully-in-memory shuffle), in split layout.
    std::vector<storage::PartitionRuns<K, V>> parts;
    // Process backend: the same partitions as opaque wire blobs. The
    // jobtracker never parses them — it forwards each reducer's blob to the
    // reduce worker, which parses and merges (the "wire shuffle").
    std::vector<std::string> run_blobs;
    std::vector<std::uint64_t> run_bytes;
    std::uint64_t raw_records = 0;       // before combine
    std::uint64_t combined_records = 0;  // after combine
    std::uint64_t raw_bytes = 0;
    std::uint64_t disk_spill_runs = 0;   // sorted runs written to scratch
    std::uint64_t disk_spill_bytes = 0;
    std::uint64_t input_records = 0;
    std::uint64_t input_bytes = 0;
    double cpu_seconds = 0.0;
    double sort_seconds = 0.0;  // wall time sorting (and re-sorting) spills
    // Map-loop wall time split: kernel time the mapper attributed via
    // TaskContext::add_compute_seconds vs everything else in the record
    // loop (decode, parse, emit). parse + compute ≈ the loop's wall time.
    double map_parse_seconds = 0.0;
    double map_compute_seconds = 0.0;
    Counters counters;
  };
  std::vector<detail::TaskTry<MapOut>> mtries(splits.size());

  // Backend-shared map attempt body (see run_map_only_job_impl for the
  // progress-hook contract).
  auto map_attempt_body = [&](std::size_t t,
                              const std::vector<std::int64_t>& skip,
                              bool inject, int attempt_no,
                              auto&& progress) -> MapOut {
    CpuStopwatch cpu;
    auto mapper = make_mapper();
    MapContext<K, V> ctx(dfs, job, static_cast<int>(t), R);
    if constexpr (kWireable) {
      // Per-(task, attempt) spill stem: a crashed attempt's files are never
      // mistaken for the retry's, and the retry starts from a fresh spill set.
      if (budget > 0)
        ctx.enable_spill(budget, scratch->dir() + "/m" + std::to_string(t) +
                                     "-a" + std::to_string(attempt_no));
    }
    try {
      detail::maybe_setup(mapper, ctx);
    } catch (const TaskError& e) {
      throw detail::AttemptFailure{-1, e.what()};
    }
    const auto& ci = dfs.chunks(splits[t].path)[splits[t].chunk_index];
    Records reader(dfs.read(splits[t].path), ci.offset, ci.size);
    std::uint64_t records = 0;
    std::int64_t seen = 0;
    Stopwatch loop_sw;
    bool batched = false;
    if constexpr (detail::BatchRecords<decltype(mapper), Records,
                                       MapContext<K, V>>) {
      // Parse-free fast path (see detail::BatchRecords): whole decoded
      // batches go straight to the mapper. Anything that addresses
      // individual records — skip mode, injected crashes, any fault plan —
      // keeps the per-record loop below; both produce identical output.
      if (skip.empty() && !inject && job.fault_plan.empty()) {
        batched = true;
        while (reader.next_batch()) {
          progress(seen);
          const std::int64_t first = reader.batch_first_key();
          try {
            mapper.map_batch(first, reader.batch(), ctx);
          } catch (const TaskError& e) {
            throw detail::AttemptFailure{first, e.what()};
          }
          const std::uint64_t n = reader.batch().size();
          seen += static_cast<std::int64_t>(n);
          records += n;
        }
      }
    }
    if (!batched) {
      while (reader.next()) {
        progress(seen++);
        const std::int64_t key = reader.key();
        if (detail::in_skip_set(skip, key)) continue;
        if (job.fault_plan.poisons_record(reader.value()))
          throw detail::AttemptFailure{key, "fault-plan poison record"};
        try {
          mapper.map(key, reader.value(), ctx);
        } catch (const TaskError& e) {
          throw detail::AttemptFailure{key, e.what()};
        }
        ++records;
        if (inject)
          throw detail::AttemptFailure{-1, "injected attempt crash"};
      }
    }
    if (inject)
      throw detail::AttemptFailure{-1, "injected attempt crash"};
    try {
      detail::maybe_cleanup(mapper, ctx);
    } catch (const TaskError& e) {
      throw detail::AttemptFailure{-1, e.what()};
    }
    const double loop_seconds = loop_sw.seconds();

    MapOut out;
    out.input_records = records;
    out.input_bytes = ci.size + reader.overread_bytes();
    out.raw_records = ctx.emitted_records();
    out.raw_bytes = ctx.emitted_bytes();
    out.map_compute_seconds = ctx.compute_seconds();
    out.map_parse_seconds = std::max(0.0, loop_seconds - ctx.compute_seconds());

    // Pairs are already partitioned (emit-time); sort each partition's
    // in-memory tail, optionally combine, and lay it out as disk runs + a
    // sorted tail — Hadoop's sort-and-spill with a combiner pass. Under a
    // memory budget, most of the data already hit scratch disk during the
    // map loop; take_partition only finalizes the file.
    Stopwatch sort_sw;
    out.parts.reserve(static_cast<std::size_t>(R));
    out.run_bytes.assign(static_cast<std::size_t>(R), 0);
    for (int r = 0; r < R; ++r) {
      auto pr = ctx.take_partition(static_cast<std::size_t>(r));
      std::uint64_t bytes = ctx.spill_bytes(static_cast<std::size_t>(r));
      if constexpr (kHasCombiner) {
        if (job.use_combiner) {
          auto combiner = make_combiner();
          // A combiner context with a single partition: combined pairs
          // land in spill 0 unhashed, re-partitioning is never needed.
          MapContext<K, V> cctx(dfs, job, static_cast<int>(t), 1);
          auto combine_group = [&](const K& key, std::span<const V> values) {
            combiner.combine(key, values, cctx);
          };
          if constexpr (kWireable) {
            if (budget > 0)
              cctx.enable_spill(
                  budget, scratch->dir() + "/m" + std::to_string(t) + "-a" +
                              std::to_string(attempt_no) + "-c" +
                              std::to_string(r));
            if (pr.has_disk()) {
              // Stream the external merge of the disk runs + tail into the
              // combiner: the identical group sequence the in-memory path
              // feeds it, one group resident at a time.
              try {
                auto cursors = storage::partition_cursors(pr);
                detail::merge_cursor_groups(
                    std::span<storage::SpillRunCursor<K, V>>(cursors.data(),
                                                             cursors.size()),
                    combine_group);
              } catch (const TaskError& e) {
                throw detail::AttemptFailure{-1, e.what()};
              }
              pr.remove_file();  // combined: the raw runs are dead
            } else {
              detail::for_each_group(pr.tail, combine_group);
            }
          } else {
            detail::for_each_group(pr.tail, combine_group);
          }
          pr = cctx.take_partition(0);
          bytes = cctx.spill_bytes(0);
          out.disk_spill_runs += cctx.disk_spill_runs();
          out.disk_spill_bytes += cctx.disk_spill_bytes();
        }
      }
      out.combined_records += pr.records();
      out.run_bytes[static_cast<std::size_t>(r)] = bytes;
      out.parts.push_back(std::move(pr));
    }
    out.disk_spill_runs += ctx.disk_spill_runs();
    out.disk_spill_bytes += ctx.disk_spill_bytes();
    out.sort_seconds = sort_sw.seconds() + ctx.spill_seconds();
    out.cpu_seconds =
        config.modeled_seconds_per_record > 0.0
            ? static_cast<double>(records) *
                  config.modeled_seconds_per_record
            : cpu.seconds();
    out.counters = ctx.counters();
    return out;
  };

  struct ReduceOut {
    std::string output;
    std::uint64_t records = 0;
    std::uint64_t groups = 0;
    double cpu_seconds = 0.0;
    // Process backend: the k-way merge ran inside the reduce worker, so its
    // cost comes back over the wire instead of being timed by the jobtracker.
    double merge_seconds = 0.0;
    // Out-of-core: wall time the external merge spent reading spill frames.
    double external_merge_seconds = 0.0;
    std::uint64_t merged_runs = 0;
    Counters counters;
  };

  // Backend-shared reduce attempt core, parameterized over the group source:
  // `for_groups(fn)` must invoke fn(key, span_of_values) once per group in
  // merge order and return the total records merged. Attempts never consume
  // the underlying runs, so a crashed attempt re-runs from the same shuffled
  // input, as Hadoop re-fetches map output that is still on the mappers'
  // disks.
  auto reduce_attempt_with = [&](int r, auto&& for_groups,
                                 const std::vector<std::int64_t>& skip,
                                 bool inject, auto&& progress) -> ReduceOut {
    CpuStopwatch cpu;
    auto reducer = make_reducer();
    ReduceContext ctx(dfs, job, r);
    try {
      detail::maybe_setup(reducer, ctx);
    } catch (const TaskError& e) {
      throw detail::AttemptFailure{-1, e.what()};
    }
    std::uint64_t groups = 0;
    std::uint64_t merged_records = 0;
    std::int64_t ordinal = -1;  // group index = skip-mode key
    try {
      merged_records =
          for_groups([&](const K& key, std::span<const V> values) {
            ++ordinal;
            progress(ordinal);
            if (detail::in_skip_set(skip, ordinal)) return;
            try {
              reducer.reduce(key, values, ctx);
            } catch (const TaskError& e) {
              throw detail::AttemptFailure{ordinal, e.what()};
            }
            ++groups;
            if (inject)
              throw detail::AttemptFailure{-1, "injected attempt crash"};
          });
    } catch (const TaskError& e) {
      // Spill-file IO failure during the external merge: a machine-style
      // crash (not attributable to any one group), retried like one.
      throw detail::AttemptFailure{-1, e.what()};
    }
    if (inject)  // no group processed: crash anyway
      throw detail::AttemptFailure{-1, "injected attempt crash"};
    try {
      detail::maybe_cleanup(reducer, ctx);
    } catch (const TaskError& e) {
      throw detail::AttemptFailure{-1, e.what()};
    }
    ReduceOut out;
    out.output = std::move(ctx.output());
    out.records = ctx.records();
    out.groups = groups;
    out.cpu_seconds =
        config.modeled_seconds_per_record > 0.0
            ? static_cast<double>(merged_records) *
                  config.modeled_seconds_per_record
            : cpu.seconds();
    out.counters = ctx.counters();
    return out;
  };

  // In-memory path: `merged` is this partition's materialized k-way merged
  // run; groups are zero-copy spans into it, shared across attempts.
  auto reduce_attempt_body = [&](int r, const SortedRun<K, V>& merged,
                                 const std::vector<std::int64_t>& skip,
                                 bool inject, auto&& progress) -> ReduceOut {
    return reduce_attempt_with(
        r,
        [&](auto&& fn) {
          detail::for_each_group(merged, fn);
          return static_cast<std::uint64_t>(merged.size());
        },
        skip, inject, progress);
  };

  // Out-of-core path: external-merge this partition's runs — spilled disk
  // runs streamed frame by frame plus in-memory tails — building fresh
  // cursors per attempt (disk runs re-streamed, tails re-read), so a crashed
  // attempt consumes nothing. Generic lambda: the body only instantiates at
  // kWireable call sites, keeping non-wireable K/V jobs compiling.
  auto streaming_attempt_body = [&](int r, const auto& parts,
                                    const std::vector<std::int64_t>& skip,
                                    bool inject, auto&& progress) -> ReduceOut {
    std::vector<storage::SpillRunCursor<K, V>> cursors;
    ReduceOut out = reduce_attempt_with(
        r,
        [&](auto&& fn) {
          cursors.clear();
          // Cursors in map-task order, disk runs before the tail within each
          // partition (spill order = emission order): the loser tree's
          // run-index tie-break then reproduces the in-memory merge exactly.
          for (const auto* pr : parts)
            for (auto& c : storage::partition_cursors(*pr))
              cursors.push_back(std::move(c));
          return detail::merge_cursor_groups(
              std::span<storage::SpillRunCursor<K, V>>(cursors.data(),
                                                       cursors.size()),
              fn);
        },
        skip, inject, progress);
    for (const auto& c : cursors) out.external_merge_seconds += c.io_seconds();
    return out;
  };

  // Process backend: one pool serves both phases; the runner dispatches on
  // the request's phase id. Forked after both attempt bodies exist so the
  // children inherit them (and the in-memory DFS) via copy-on-write.
  std::unique_ptr<ipc::WorkerPool> wpool;
  if constexpr (kWireable) {
    if (config.backend == ExecutionBackend::kProcess) {
      ipc::TaskRunner runner = [&](const ipc::TaskRequest& req,
                                   ipc::WorkerTaskContext& wctx) {
        return detail::run_child_attempt([&]() -> std::string {
          auto progress = [&wctx](std::int64_t rec) { wctx.progress(rec); };
          if (req.phase == 1) {
            return detail::encode_map_out<MapOut, K, V>(
                map_attempt_body(static_cast<std::size_t>(req.task), req.skip,
                                 req.inject_crash, req.attempt, progress));
          }
          // Reduce: parse the wire-shuffled partition bundle. Run *metadata*
          // travels over the wire; spilled run *data* stays on the shared
          // scratch disk (the worker inherited the path via fork) and is
          // streamed straight from the map tasks' files when any partition
          // spilled — otherwise materialize the k-way merge of the tails.
          auto bparts = detail::parse_partition_bundle<K, V>(req.payload);
          bool any_disk = false;
          for (const auto& pr : bparts)
            if (pr.has_disk()) any_disk = true;
          if (any_disk) {
            std::vector<const storage::PartitionRuns<K, V>*> ptrs;
            std::uint64_t nruns = 0;
            ptrs.reserve(bparts.size());
            for (const auto& pr : bparts) {
              if (pr.empty()) continue;
              ptrs.push_back(&pr);
              nruns += storage::partition_run_count(pr);
            }
            ReduceOut out = streaming_attempt_body(
                req.task, ptrs, req.skip, req.inject_crash, progress);
            out.merged_runs = nruns;
            return detail::encode_reduce_out(out);
          }
          std::vector<SortedRun<K, V>*> truns;
          truns.reserve(bparts.size());
          for (auto& pr : bparts)
            if (!pr.tail.empty()) truns.push_back(&pr.tail);
          Stopwatch merge_sw;
          const SortedRun<K, V> merged = detail::merge_sorted_runs<K, V>(
              std::span<SortedRun<K, V>* const>(truns.data(), truns.size()));
          const double merge_s = merge_sw.seconds();
          ReduceOut out = reduce_attempt_body(req.task, merged, req.skip,
                                              req.inject_crash, progress);
          out.merge_seconds = merge_s;
          out.merged_runs = truns.size();
          return detail::encode_reduce_out(out);
        });
      };
      wpool = std::make_unique<ipc::WorkerPool>(
          detail::worker_pool_options(config, job, tel), std::move(runner));
    }
  }

  auto run_map_task = [&](std::size_t t) {
    mtries[t] = detail::run_task_attempts<MapOut>(
        job, config.seed, /*phase=*/1, t,
        [&, t](const std::vector<std::int64_t>& skip, bool inject,
               int attempt_no) {
          if constexpr (kWireable) {
            if (wpool != nullptr) {
              return detail::remote_attempt<MapOut>(
                  *wpool, job, /*phase=*/1, t, attempt_no, skip, inject, {},
                  [](std::string_view p) {
                    return detail::decode_map_out<MapOut>(p);
                  });
            }
          }
          return map_attempt_body(t, skip, inject, attempt_no,
                                  [](std::int64_t) {});
        });
  };
  auto map_cost_of = [&](std::size_t t) {
    MapTaskCost c;
    if (mtries[t].ok) {
      std::uint64_t spill = 0;
      for (auto b : mtries[t].value.run_bytes) spill += b;
      c.input_bytes = mtries[t].value.input_bytes;
      c.output_bytes = spill;
      c.cpu_seconds = mtries[t].value.cpu_seconds;
    } else {
      c.input_bytes = dfs.chunks(splits[t].path)[splits[t].chunk_index].size;
    }
    return c;
  };

  // One process-shared pool serves the map waves and the reduce phase alike.
  const auto pool = shared_thread_pool(config.resolved_execution_threads());
  const detail::MapPhaseOutcome mphase = detail::run_map_phase<MapOut>(
      dfs, config, job, splits, mtries, *pool, run_map_task, map_cost_of);

  result.failed_tasks =
      detail::enforce_map_failure_policy(job, mtries, mphase.lost);

  for (std::size_t t = 0; t < splits.size(); ++t) {
    result.failed_task_attempts += mtries[t].crashed_attempts;
    if (!mtries[t].ok) continue;
    const auto& out = mtries[t].value;
    result.map_input_records += out.input_records;
    result.input_bytes += out.input_bytes;
    result.map_output_records += out.raw_records;
    result.map_output_bytes += out.raw_bytes;
    result.combine_output_records += out.combined_records;
    result.disk_spill_runs += out.disk_spill_runs;
    result.disk_spill_bytes += out.disk_spill_bytes;
    result.sort_seconds += out.sort_seconds;
    result.map_parse_seconds += out.map_parse_seconds;
    result.map_compute_seconds += out.map_compute_seconds;
    result.skipped_records += mtries[t].skipped_records;
    for (const auto& [k, v] : out.counters) result.counters[k] += v;
  }

  // --- shuffle + reduce (real execution) -----------------------------------
  std::vector<detail::TaskTry<ReduceOut>> rtries(static_cast<std::size_t>(R));
  std::vector<ReduceTaskCost> rcosts(static_cast<std::size_t>(R));

  // Shuffle accounting: bytes each reducer pulls from each surviving map
  // task, tagged with the node that map task ran on in the virtual schedule.
  for (int r = 0; r < R; ++r) {
    auto& rc = rcosts[static_cast<std::size_t>(r)];
    for (std::size_t t = 0; t < splits.size(); ++t) {
      if (!mtries[t].ok) continue;  // failed maps contributed no spill
      const std::uint64_t b =
          mtries[t].value.run_bytes[static_cast<std::size_t>(r)];
      if (b > 0) rc.shuffle_from.emplace_back(mphase.assigned_node[t], b);
      result.shuffle_bytes += b;
    }
  }

  std::vector<double> merge_secs(static_cast<std::size_t>(R), 0.0);
  std::vector<std::uint64_t> merged_run_counts(static_cast<std::size_t>(R), 0);
  {
    std::vector<std::future<void>> futs;
    futs.reserve(static_cast<std::size_t>(R));
    for (int r = 0; r < R; ++r) {
      futs.push_back(pool->submit([&, r] {
        if constexpr (kWireable) {
          if (wpool != nullptr) {
            // Wire shuffle: hand the reduce worker the surviving maps'
            // partition blobs in map-task order — the merge-stability order —
            // so the worker-side loser tree reproduces the thread backend's
            // output byte for byte. Every attempt re-ships the same bundle,
            // as Hadoop re-fetches map output after a reduce attempt dies.
            std::vector<std::string> blobs;
            blobs.reserve(mtries.size());
            for (const auto& m : mtries) {
              if (!m.ok) continue;
              blobs.push_back(m.value.run_blobs[static_cast<std::size_t>(r)]);
            }
            const std::string bundle = detail::encode_reduce_bundle(blobs);
            rtries[static_cast<std::size_t>(r)] =
                detail::run_task_attempts<ReduceOut>(
                    job, config.seed, /*phase=*/2, static_cast<std::size_t>(r),
                    [&](const std::vector<std::int64_t>& skip, bool inject,
                        int attempt_no) {
                      return detail::remote_attempt<ReduceOut>(
                          *wpool, job, /*phase=*/2,
                          static_cast<std::size_t>(r), attempt_no, skip,
                          inject, bundle, [](std::string_view p) {
                            return detail::decode_reduce_out<ReduceOut>(p);
                          });
                    });
            const auto& rt = rtries[static_cast<std::size_t>(r)];
            if (rt.ok) {
              merge_secs[static_cast<std::size_t>(r)] = rt.value.merge_seconds;
              merged_run_counts[static_cast<std::size_t>(r)] =
                  rt.value.merged_runs;
            }
            return;
          }
        }
        // Gather this partition's output from every surviving map task, in
        // map-task order — the merge-stability order.
        std::vector<storage::PartitionRuns<K, V>*> parts;
        bool any_disk = false;
        for (auto& m : mtries) {
          if (!m.ok) continue;
          auto& pr = m.value.parts[static_cast<std::size_t>(r)];
          if (pr.empty()) continue;
          parts.push_back(&pr);
          if (pr.has_disk()) any_disk = true;
        }
        if constexpr (kWireable) {
          if (any_disk) {
            // Out-of-core: no materialized merge; every attempt re-streams
            // the external merge over the spilled runs and in-memory tails.
            std::uint64_t nruns = 0;
            for (const auto* pr : parts)
              nruns += storage::partition_run_count(*pr);
            merged_run_counts[static_cast<std::size_t>(r)] = nruns;
            rtries[static_cast<std::size_t>(r)] =
                detail::run_task_attempts<ReduceOut>(
                    job, config.seed, /*phase=*/2, static_cast<std::size_t>(r),
                    [&](const std::vector<std::int64_t>& skip, bool inject,
                        int) {
                      return streaming_attempt_body(r, parts, skip, inject,
                                                    [](std::int64_t) {});
                    });
            return;
          }
        }
        // In-memory: k-way merge the sorted tails. The loser tree's tie-break
        // on run index reproduces the old concat-and-stable-sort order
        // exactly (map-task order, then emission order). The merged run is
        // built once; attempts share it (see reduce_attempt_body).
        std::vector<SortedRun<K, V>*> truns;
        truns.reserve(parts.size());
        for (auto* pr : parts) truns.push_back(&pr->tail);
        Stopwatch merge_sw;
        const SortedRun<K, V> merged = detail::merge_sorted_runs<K, V>(
            std::span<SortedRun<K, V>* const>(truns.data(), truns.size()));
        merge_secs[static_cast<std::size_t>(r)] = merge_sw.seconds();
        merged_run_counts[static_cast<std::size_t>(r)] = truns.size();

        rtries[static_cast<std::size_t>(r)] =
            detail::run_task_attempts<ReduceOut>(
                job, config.seed, /*phase=*/2, static_cast<std::size_t>(r),
                [&](const std::vector<std::int64_t>& skip, bool inject,
                    int) {
                  return reduce_attempt_body(r, merged, skip, inject,
                                             [](std::int64_t) {});
                });
      }));
    }
    for (auto& f : futs) f.get();
  }
  for (int r = 0; r < R; ++r) {
    result.merge_seconds += merge_secs[static_cast<std::size_t>(r)];
    result.spill_runs += merged_run_counts[static_cast<std::size_t>(r)];
  }

  // A reduce task that exhausted its attempts sinks the job: its partition's
  // output is simply missing, and reduce output is never partial in Hadoop.
  for (int r = 0; r < R; ++r) {
    const auto& rt = rtries[static_cast<std::size_t>(r)];
    result.failed_task_attempts += rt.crashed_attempts;
    if (rt.ok) continue;
    throw JobError(rt.skip_budget_exhausted
                       ? JobError::Kind::kSkipBudgetExhausted
                       : JobError::Kind::kAttemptsExhausted,
                   job.name, /*phase=*/2, r, rt.attempts, rt.error);
  }

  for (int r = 0; r < R; ++r) {
    auto& rc = rcosts[static_cast<std::size_t>(r)];
    rc.cpu_seconds = rtries[static_cast<std::size_t>(r)].value.cpu_seconds;
    rc.output_bytes = rtries[static_cast<std::size_t>(r)].value.output.size();
    rc.failed_attempts = rtries[static_cast<std::size_t>(r)].crashed_attempts;
  }
  const ReduceSchedule rsched =
      schedule_reduce_phase(config, rcosts, detail::dead_nodes_of(dfs));

  for (int r = 0; r < R; ++r) {
    auto& rt = rtries[static_cast<std::size_t>(r)];
    auto& out = rt.value;
    result.reduce_input_groups += out.groups;
    result.external_merge_seconds += out.external_merge_seconds;
    result.output_records += out.records;
    result.output_bytes += out.output.size();
    result.skipped_records += rt.skipped_records;
    for (const auto& [k, v] : out.counters) result.counters[k] += v;
    dfs.put(detail::part_name(job.output, "r", r), std::move(out.output),
            rsched.assigned_node[static_cast<std::size_t>(r)]);
  }
  if (result.skipped_records > 0)
    result.counters["SkippedRecords"] +=
        static_cast<std::int64_t>(result.skipped_records);

  result.data_local_maps = mphase.data_local;
  result.rack_local_maps = mphase.rack_local;
  result.remote_maps = mphase.remote;
  result.speculative_copies = mphase.speculative_copies;
  result.speculative_wins = mphase.speculative_wins;
  result.blacklisted_nodes = mphase.blacklisted_nodes + rsched.blacklisted_nodes;
  result.lost_chunks = mphase.lost_chunks;
  result.sim_startup_seconds = config.job_startup_seconds +
                               detail::cache_distribution_seconds(dfs, config, job);
  result.sim_map_seconds = mphase.makespan;
  result.sim_reduce_seconds = rsched.makespan;
  result.sim_recovery_seconds = mphase.recovery_seconds;
  result.sim_seconds = result.sim_startup_seconds + result.sim_map_seconds +
                       result.sim_recovery_seconds + result.sim_reduce_seconds;

  if (wpool != nullptr) {
    // Read stats before the pool's destructor shuts workers down: clean
    // shutdown exits must not count as deaths.
    detail::absorb_worker_stats(result, wpool->stats());
    wpool.reset();
  }
  result.real_seconds = wall.seconds();

  if (tel.enabled()) {
    detail::record_job_metrics(tel.metrics, result, &mphase.slices,
                               &rsched.slices);
    detail::JobTraceData td;
    td.map_costs = &mphase.costs;
    td.map_slices = &mphase.slices;
    td.map_events = &mphase.events;
    td.recovery_windows = &mphase.recovery_windows;
    td.map_notes.reserve(mtries.size());
    for (const auto& tt : mtries)
      td.map_notes.push_back({tt.attempts, tt.skipped_records, tt.ok});
    td.reduce_costs = &rcosts;
    td.reduce_slices = &rsched.slices;
    td.reduce_events = &rsched.events;
    td.reduce_notes.reserve(rtries.size());
    for (const auto& rt : rtries)
      td.reduce_notes.push_back({rt.attempts, rt.skipped_records, rt.ok});
    detail::record_job_trace(tel.trace, config, job, result, td);
  }
  return result;
}

}  // namespace detail

/// Run a full map-reduce job over newline-delimited text input. See the file
/// header for the Mapper / Reducer / Combiner shapes. `make_mapper` /
/// `make_reducer` / `make_combiner` are invoked once per task attempt.
template <typename MapperFactory, typename ReducerFactory,
          typename CombinerFactory = NoCombiner>
JobResult run_mapreduce_job(Dfs& dfs, const ClusterConfig& config,
                            const JobConfig& job, MapperFactory make_mapper,
                            ReducerFactory make_reducer,
                            CombinerFactory make_combiner = {}) {
  return detail::run_mapreduce_job_impl<detail::TextRecords>(
      dfs, config, job, std::move(make_mapper), std::move(make_reducer),
      std::move(make_combiner));
}

/// Full map-reduce job over SequenceFile-style fixed-size binary records
/// (record index as key, raw record bytes as value) — the binary counterpart
/// of run_mapreduce_job, sharing its engine.
template <typename MapperFactory, typename ReducerFactory,
          typename CombinerFactory = NoCombiner>
JobResult run_binary_mapreduce_job(Dfs& dfs, const ClusterConfig& config,
                                   const JobConfig& job,
                                   MapperFactory make_mapper,
                                   ReducerFactory make_reducer,
                                   CombinerFactory make_combiner = {}) {
  return detail::run_mapreduce_job_impl<detail::BinaryRecords>(
      dfs, config, job, std::move(make_mapper), std::move(make_reducer),
      std::move(make_combiner));
}

}  // namespace gepeto::mr
