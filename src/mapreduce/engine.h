// The MapReduce execution engine.
//
// Jobs are expressed as Hadoop-style Mapper / Reducer / Combiner classes,
// but typed and checked at compile time:
//
//   struct MyMapper {
//     using OutKey = int;                 // intermediate key type
//     using OutValue = double;            // intermediate value type
//     void setup(TaskContext& ctx);       // optional
//     void map(std::int64_t offset, std::string_view line,
//              MapContext<OutKey, OutValue>& ctx);
//     void cleanup(MapContext<OutKey, OutValue>& ctx);  // optional
//   };
//
//   struct MyReducer {
//     void setup(TaskContext& ctx);       // optional
//     void reduce(const int& key, std::span<const double> values,
//                 ReduceContext& ctx);    // ctx.write(line) -> DFS text
//   };
//
//   struct MyCombiner {                   // optional, same shape as reduce
//     void combine(const int& key, std::span<const double> values,
//                  MapContext<int, double>& ctx);
//   };
//
// run_mapreduce_job() executes one job: one map task per DFS chunk of the
// input, executed for real on host threads; intermediate pairs are hash-
// partitioned, sorted by key, optionally combined, shuffled (with byte
// accounting), reduced, and the reduce output written back to the DFS as
// text, exactly as the Hadoop pipeline in the paper. run_map_only_job()
// covers the paper's map-only jobs (sampling, DJ-Cluster preprocessing)
// where mappers write output lines directly.
//
// Every job also produces a simulated cluster-clock profile via the virtual
// jobtracker in scheduler.h.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <future>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "mapreduce/dfs.h"
#include "mapreduce/job.h"
#include "mapreduce/record_io.h"
#include "mapreduce/scheduler.h"
#include "mapreduce/seqfile.h"

namespace gepeto::mr {

/// Per-task services available to mappers and reducers: the DFS (for the
/// distributed cache), the job configuration, and task-local counters.
class TaskContext {
 public:
  TaskContext(const Dfs& dfs, const JobConfig& job, int task_index)
      : dfs_(dfs), job_(job), task_index_(task_index) {}

  const Dfs& dfs() const { return dfs_; }
  const JobConfig& job() const { return job_; }
  int task_index() const { return task_index_; }

  /// Read a distributed-cache file (must be listed in job.cache_files).
  std::string_view cache_file(const std::string& path) const {
    GEPETO_CHECK_MSG(std::find(job_.cache_files.begin(),
                               job_.cache_files.end(),
                               path) != job_.cache_files.end(),
                     "file not in the distributed cache: " << path);
    return dfs_.read(path);
  }

  void increment(const std::string& counter, std::int64_t by = 1) {
    counters_[counter] += by;
  }

  const Counters& counters() const { return counters_; }

 private:
  const Dfs& dfs_;
  const JobConfig& job_;
  int task_index_;
  Counters counters_;
};

/// Context handed to map-only mappers: output lines go straight to the
/// task's DFS output part file.
class MapOnlyContext : public TaskContext {
 public:
  using TaskContext::TaskContext;

  /// Emit one output record (a line; '\n' is appended).
  void write(std::string_view line) {
    out_.append(line);
    out_.push_back('\n');
    ++records_;
  }

  std::string& output() { return out_; }
  std::uint64_t records() const { return records_; }

 private:
  std::string out_;
  std::uint64_t records_ = 0;
};

/// Context handed to mappers (and combiners) of full map-reduce jobs.
template <typename K, typename V>
class MapContext : public TaskContext {
 public:
  using TaskContext::TaskContext;

  void emit(K key, V value) {
    pairs_.emplace_back(std::move(key), std::move(value));
  }

  std::vector<std::pair<K, V>>& pairs() { return pairs_; }

 private:
  std::vector<std::pair<K, V>> pairs_;
};

/// Context handed to reducers; output lines form the job's DFS output.
class ReduceContext : public TaskContext {
 public:
  using TaskContext::TaskContext;

  void write(std::string_view line) {
    out_.append(line);
    out_.push_back('\n');
    ++records_;
  }

  std::string& output() { return out_; }
  std::uint64_t records() const { return records_; }

 private:
  std::string out_;
  std::uint64_t records_ = 0;
};

namespace detail {

/// One map task = one chunk of one input file.
struct SplitDesc {
  std::string path;
  std::size_t chunk_index;
};

inline std::vector<SplitDesc> gather_splits(const Dfs& dfs,
                                            const std::string& input) {
  std::vector<SplitDesc> splits;
  const auto paths = dfs.list(input);
  GEPETO_CHECK_MSG(!paths.empty(), "no input files under '" << input << "'");
  for (const auto& p : paths) {
    const auto& chunks = dfs.chunks(p);
    for (std::size_t c = 0; c < chunks.size(); ++c) splits.push_back({p, c});
  }
  return splits;
}

/// Deterministic injected-failure count for task `index` of a job.
inline int injected_failures(const JobConfig& job, std::uint64_t seed,
                             std::uint64_t phase, std::uint64_t index) {
  if (job.failures.task_failure_prob <= 0.0) return 0;
  Rng rng(seed ^ (phase * 0x9e3779b97f4a7c15ULL) ^
          std::hash<std::string>{}(job.name) ^ (index * 0xA24BAED4963EE407ULL));
  int failures = 0;
  while (failures < job.failures.max_attempts - 1 &&
         rng.chance(job.failures.task_failure_prob)) {
    ++failures;
  }
  GEPETO_CHECK_MSG(failures < job.failures.max_attempts,
                   "task exceeded max attempts");
  return failures;
}

template <typename K>
std::uint64_t partition_of(const K& key, int num_reducers) {
  std::uint64_t h;
  if constexpr (requires(const K& k) { k.partition_hash(); }) {
    h = key.partition_hash();
  } else {
    h = static_cast<std::uint64_t>(std::hash<K>{}(key));
  }
  // Mix: std::hash of integers is often identity; avoid modulo bias patterns.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h % static_cast<std::uint64_t>(num_reducers);
}

template <typename K, typename V>
std::uint64_t pairs_bytes(const std::vector<std::pair<K, V>>& pairs) {
  std::uint64_t b = 0;
  for (const auto& [k, v] : pairs) b += approx_bytes(k) + approx_bytes(v);
  return b;
}

/// Sort pairs by key (stable so equal-key value order stays deterministic:
/// map task order, then emission order — mirrors Hadoop's merge of sorted
/// spills).
template <typename K, typename V>
void sort_pairs(std::vector<std::pair<K, V>>& pairs) {
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
}

/// Invoke `fn(key, span_of_values)` for each run of equal keys in sorted
/// pairs. Values are moved into a scratch vector to present a contiguous
/// span, as Hadoop presents an iterator per key group.
template <typename K, typename V, typename Fn>
void for_each_group(std::vector<std::pair<K, V>>& sorted, Fn&& fn) {
  std::vector<V> values;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j].first == sorted[i].first) ++j;
    values.clear();
    values.reserve(j - i);
    for (std::size_t t = i; t < j; ++t) values.push_back(std::move(sorted[t].second));
    fn(sorted[i].first, std::span<const V>(values.data(), values.size()));
    i = j;
  }
}

template <typename Task, typename Ctx>
void maybe_setup(Task& task, Ctx& ctx) {
  if constexpr (requires { task.setup(ctx); }) task.setup(ctx);
}

template <typename Task, typename Ctx>
void maybe_cleanup(Task& task, Ctx& ctx) {
  if constexpr (requires { task.cleanup(ctx); }) task.cleanup(ctx);
}

inline std::string part_name(const std::string& dir, const char* kind, int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/part-%s-%05d", kind, i);
  return dir + buf;
}

/// Simulated time to seed the distributed cache onto every worker node: the
/// replicas serve the file to the cluster in parallel waves.
inline double cache_distribution_seconds(const Dfs& dfs,
                                         const ClusterConfig& config,
                                         const JobConfig& job) {
  double total = 0.0;
  for (const auto& path : job.cache_files) {
    const double bytes = static_cast<double>(dfs.file_size(path));
    const int waves =
        (config.num_worker_nodes + config.replication - 1) /
        std::max(1, config.replication);
    total += bytes / config.intra_rack_Bps * static_cast<double>(waves);
  }
  return total;
}

/// Reader policies: adapt the text and binary record readers to one
/// (key, value, overread) interface for the shared map-only driver.
struct TextRecords {
  LineRecordReader reader;
  TextRecords(std::string_view file, std::uint64_t off, std::uint64_t len)
      : reader(file, off, len) {}
  bool next() { return reader.next(); }
  std::int64_t key() const { return reader.key(); }
  std::string_view value() const { return reader.value(); }
  std::uint64_t overread_bytes() const { return reader.overread_bytes(); }
};

struct BinaryRecords {
  SeqFileReader reader;
  std::int64_t index = -1;
  BinaryRecords(std::string_view file, std::uint64_t off, std::uint64_t len)
      : reader(file, off, len) {}
  bool next() {
    if (!reader.next()) return false;
    ++index;
    return true;
  }
  std::int64_t key() const { return index; }  ///< record index within split
  std::string_view value() const { return reader.record(); }
  std::uint64_t overread_bytes() const { return 0; }
};

template <typename Records, typename MapperFactory>
JobResult run_map_only_job_impl(Dfs& dfs, const ClusterConfig& config,
                                const JobConfig& job,
                                MapperFactory make_mapper);

}  // namespace detail

/// Run a map-only job (num_reducers is ignored; no shuffle happens). Each
/// map task writes its output lines to `output/part-m-NNNNN`.
///
/// `make_mapper` is invoked once per map task and must return a fresh mapper.
template <typename MapperFactory>
JobResult run_map_only_job(Dfs& dfs, const ClusterConfig& config,
                           const JobConfig& job, MapperFactory make_mapper) {
  return detail::run_map_only_job_impl<detail::TextRecords>(dfs, config, job,
                                                            make_mapper);
}

/// Map-only job over SequenceFile-style binary inputs (mr::SeqFileWriter
/// files in the DFS). The mapper receives (record index within the split,
/// record bytes) — the binary analogue of (line offset, line).
template <typename MapperFactory>
JobResult run_binary_map_only_job(Dfs& dfs, const ClusterConfig& config,
                                  const JobConfig& job,
                                  MapperFactory make_mapper) {
  return detail::run_map_only_job_impl<detail::BinaryRecords>(dfs, config, job,
                                                              make_mapper);
}

namespace detail {

template <typename Records, typename MapperFactory>
JobResult run_map_only_job_impl(Dfs& dfs, const ClusterConfig& config,
                                const JobConfig& job,
                                MapperFactory make_mapper) {
  config.validate();
  Stopwatch wall;
  JobResult result;
  result.job_name = job.name;

  const auto splits = detail::gather_splits(dfs, job.input);
  result.num_map_tasks = static_cast<int>(splits.size());
  dfs.remove_prefix(job.output + "/");

  struct TaskOut {
    std::string output;
    std::uint64_t records = 0;
    std::uint64_t input_records = 0;
    std::uint64_t input_bytes = 0;
    double cpu_seconds = 0.0;
    Counters counters;
  };
  std::vector<TaskOut> outs(splits.size());

  {
    ThreadPool pool(config.resolved_execution_threads());
    std::vector<std::future<void>> futs;
    futs.reserve(splits.size());
    for (std::size_t t = 0; t < splits.size(); ++t) {
      futs.push_back(pool.submit([&, t] {
        CpuStopwatch cpu;
        auto mapper = make_mapper();
        MapOnlyContext ctx(dfs, job, static_cast<int>(t));
        detail::maybe_setup(mapper, ctx);
        const auto& ci = dfs.chunks(splits[t].path)[splits[t].chunk_index];
        Records reader(dfs.read(splits[t].path), ci.offset, ci.size);
        std::uint64_t records = 0;
        while (reader.next()) {
          mapper.map(reader.key(), reader.value(), ctx);
          ++records;
        }
        detail::maybe_cleanup(mapper, ctx);
        outs[t].output = std::move(ctx.output());
        outs[t].records = ctx.records();
        outs[t].input_records = records;
        outs[t].input_bytes = ci.size + reader.overread_bytes();
        outs[t].cpu_seconds = cpu.seconds();
        outs[t].counters = ctx.counters();
      }));
    }
    for (auto& f : futs) f.get();
  }

  // Virtual-time schedule.
  std::vector<MapTaskCost> costs(splits.size());
  for (std::size_t t = 0; t < splits.size(); ++t) {
    costs[t].input_bytes = outs[t].input_bytes;
    costs[t].output_bytes = outs[t].output.size();
    costs[t].cpu_seconds = outs[t].cpu_seconds;
    costs[t].replica_nodes =
        dfs.chunks(splits[t].path)[splits[t].chunk_index].replicas;
    costs[t].failed_attempts =
        detail::injected_failures(job, config.seed, /*phase=*/1, t);
    result.failed_task_attempts += costs[t].failed_attempts;
  }
  const MapSchedule sched = schedule_map_phase(config, costs);

  // Write part files with first replica on the node that ran the task.
  for (std::size_t t = 0; t < splits.size(); ++t) {
    result.map_input_records += outs[t].input_records;
    result.input_bytes += outs[t].input_bytes;
    result.output_records += outs[t].records;
    result.output_bytes += outs[t].output.size();
    for (const auto& [k, v] : outs[t].counters) result.counters[k] += v;
    dfs.put(detail::part_name(job.output, "m", static_cast<int>(t)),
            std::move(outs[t].output), sched.assigned_node[t]);
  }
  result.map_output_records = result.output_records;
  result.combine_output_records = result.output_records;

  result.data_local_maps = sched.data_local;
  result.rack_local_maps = sched.rack_local;
  result.remote_maps = sched.remote;
  result.speculative_copies = sched.speculative_copies;
  result.speculative_wins = sched.speculative_wins;
  result.sim_startup_seconds = config.job_startup_seconds +
                               detail::cache_distribution_seconds(dfs, config, job);
  result.sim_map_seconds = sched.makespan;
  result.sim_seconds = result.sim_startup_seconds + sched.makespan;
  result.real_seconds = wall.seconds();
  return result;
}

}  // namespace detail

struct NoCombiner {};

/// Run a full map-reduce job. See the file header for the Mapper / Reducer /
/// Combiner shapes. `make_mapper` / `make_reducer` / `make_combiner` are
/// invoked once per task.
template <typename MapperFactory, typename ReducerFactory,
          typename CombinerFactory = NoCombiner>
JobResult run_mapreduce_job(Dfs& dfs, const ClusterConfig& config,
                            const JobConfig& job, MapperFactory make_mapper,
                            ReducerFactory make_reducer,
                            CombinerFactory make_combiner = {}) {
  using Mapper = decltype(make_mapper());
  using K = typename Mapper::OutKey;
  using V = typename Mapper::OutValue;
  constexpr bool kHasCombiner = !std::is_same_v<CombinerFactory, NoCombiner>;

  config.validate();
  GEPETO_CHECK(job.num_reducers > 0);
  GEPETO_CHECK_MSG(!job.use_combiner || kHasCombiner,
                   "job.use_combiner set but no combiner factory given");
  Stopwatch wall;
  JobResult result;
  result.job_name = job.name;

  const auto splits = detail::gather_splits(dfs, job.input);
  result.num_map_tasks = static_cast<int>(splits.size());
  result.num_reduce_tasks = job.num_reducers;
  dfs.remove_prefix(job.output + "/");

  const int R = job.num_reducers;

  struct MapOut {
    // One bucket of sorted (combined) pairs per reducer partition.
    std::vector<std::vector<std::pair<K, V>>> buckets;
    std::vector<std::uint64_t> bucket_bytes;
    std::uint64_t raw_records = 0;       // before combine
    std::uint64_t combined_records = 0;  // after combine
    std::uint64_t raw_bytes = 0;
    std::uint64_t input_records = 0;
    std::uint64_t input_bytes = 0;
    double cpu_seconds = 0.0;
    Counters counters;
  };
  std::vector<MapOut> mouts(splits.size());

  {
    ThreadPool pool(config.resolved_execution_threads());
    std::vector<std::future<void>> futs;
    futs.reserve(splits.size());
    for (std::size_t t = 0; t < splits.size(); ++t) {
      futs.push_back(pool.submit([&, t] {
        CpuStopwatch cpu;
        auto mapper = make_mapper();
        MapContext<K, V> ctx(dfs, job, static_cast<int>(t));
        detail::maybe_setup(mapper, ctx);
        const auto& ci = dfs.chunks(splits[t].path)[splits[t].chunk_index];
        LineRecordReader reader(dfs.read(splits[t].path), ci.offset, ci.size);
        std::uint64_t records = 0;
        while (reader.next()) {
          mapper.map(reader.key(), reader.value(), ctx);
          ++records;
        }
        detail::maybe_cleanup(mapper, ctx);

        MapOut& out = mouts[t];
        out.input_records = records;
        out.input_bytes = ci.size + reader.overread_bytes();
        out.raw_records = ctx.pairs().size();
        out.raw_bytes = detail::pairs_bytes(ctx.pairs());

        // Partition, sort, and (optionally) combine — per partition, like
        // Hadoop's sort-and-spill with a combiner pass.
        out.buckets.resize(static_cast<std::size_t>(R));
        out.bucket_bytes.assign(static_cast<std::size_t>(R), 0);
        for (auto& kv : ctx.pairs()) {
          const auto p = detail::partition_of(kv.first, R);
          out.buckets[p].push_back(std::move(kv));
        }
        for (int r = 0; r < R; ++r) {
          auto& bucket = out.buckets[static_cast<std::size_t>(r)];
          detail::sort_pairs(bucket);
          if constexpr (kHasCombiner) {
            if (job.use_combiner) {
              auto combiner = make_combiner();
              MapContext<K, V> cctx(dfs, job, static_cast<int>(t));
              detail::for_each_group(
                  bucket, [&](const K& key, std::span<const V> values) {
                    combiner.combine(key, values, cctx);
                  });
              bucket = std::move(cctx.pairs());
              detail::sort_pairs(bucket);
            }
          }
          out.combined_records += bucket.size();
          out.bucket_bytes[static_cast<std::size_t>(r)] =
              detail::pairs_bytes(bucket);
        }
        out.cpu_seconds = cpu.seconds();
        out.counters = ctx.counters();
      }));
    }
    for (auto& f : futs) f.get();
  }

  // Virtual-time map schedule.
  std::vector<MapTaskCost> mcosts(splits.size());
  for (std::size_t t = 0; t < splits.size(); ++t) {
    std::uint64_t spill = 0;
    for (auto b : mouts[t].bucket_bytes) spill += b;
    mcosts[t].input_bytes = mouts[t].input_bytes;
    mcosts[t].output_bytes = spill;
    mcosts[t].cpu_seconds = mouts[t].cpu_seconds;
    mcosts[t].replica_nodes =
        dfs.chunks(splits[t].path)[splits[t].chunk_index].replicas;
    mcosts[t].failed_attempts =
        detail::injected_failures(job, config.seed, /*phase=*/1, t);
    result.failed_task_attempts += mcosts[t].failed_attempts;
  }
  const MapSchedule msched = schedule_map_phase(config, mcosts);

  for (std::size_t t = 0; t < splits.size(); ++t) {
    result.map_input_records += mouts[t].input_records;
    result.input_bytes += mouts[t].input_bytes;
    result.map_output_records += mouts[t].raw_records;
    result.map_output_bytes += mouts[t].raw_bytes;
    result.combine_output_records += mouts[t].combined_records;
    for (const auto& [k, v] : mouts[t].counters) result.counters[k] += v;
  }

  // --- shuffle + reduce (real execution) -----------------------------------
  struct ReduceOut {
    std::string output;
    std::uint64_t records = 0;
    std::uint64_t groups = 0;
    double cpu_seconds = 0.0;
    Counters counters;
  };
  std::vector<ReduceOut> routs(static_cast<std::size_t>(R));
  std::vector<ReduceTaskCost> rcosts(static_cast<std::size_t>(R));

  // Shuffle accounting: bytes each reducer pulls from each map task, tagged
  // with the node the map task ran on in the virtual schedule.
  for (int r = 0; r < R; ++r) {
    auto& rc = rcosts[static_cast<std::size_t>(r)];
    for (std::size_t t = 0; t < splits.size(); ++t) {
      const std::uint64_t b = mouts[t].bucket_bytes[static_cast<std::size_t>(r)];
      if (b > 0) rc.shuffle_from.emplace_back(msched.assigned_node[t], b);
      result.shuffle_bytes += b;
    }
  }

  {
    ThreadPool pool(config.resolved_execution_threads());
    std::vector<std::future<void>> futs;
    futs.reserve(static_cast<std::size_t>(R));
    for (int r = 0; r < R; ++r) {
      futs.push_back(pool.submit([&, r] {
        CpuStopwatch cpu;
        // Merge this partition's buckets from every map task. Map-task order
        // then emission order keeps grouping deterministic (stable sort).
        std::vector<std::pair<K, V>> merged;
        std::size_t total = 0;
        for (const auto& m : mouts)
          total += m.buckets[static_cast<std::size_t>(r)].size();
        merged.reserve(total);
        for (auto& m : mouts) {
          auto& b = m.buckets[static_cast<std::size_t>(r)];
          std::move(b.begin(), b.end(), std::back_inserter(merged));
        }
        detail::sort_pairs(merged);

        auto reducer = make_reducer();
        ReduceContext ctx(dfs, job, r);
        detail::maybe_setup(reducer, ctx);
        std::uint64_t groups = 0;
        detail::for_each_group(merged,
                               [&](const K& key, std::span<const V> values) {
                                 reducer.reduce(key, values, ctx);
                                 ++groups;
                               });
        detail::maybe_cleanup(reducer, ctx);
        auto& out = routs[static_cast<std::size_t>(r)];
        out.output = std::move(ctx.output());
        out.records = ctx.records();
        out.groups = groups;
        out.cpu_seconds = cpu.seconds();
        out.counters = ctx.counters();
      }));
    }
    for (auto& f : futs) f.get();
  }

  for (int r = 0; r < R; ++r) {
    auto& rc = rcosts[static_cast<std::size_t>(r)];
    rc.cpu_seconds = routs[static_cast<std::size_t>(r)].cpu_seconds;
    rc.output_bytes = routs[static_cast<std::size_t>(r)].output.size();
    rc.failed_attempts = detail::injected_failures(
        job, config.seed, /*phase=*/2, static_cast<std::uint64_t>(r));
    result.failed_task_attempts += rc.failed_attempts;
  }
  const ReduceSchedule rsched = schedule_reduce_phase(config, rcosts);

  for (int r = 0; r < R; ++r) {
    auto& out = routs[static_cast<std::size_t>(r)];
    result.reduce_input_groups += out.groups;
    result.output_records += out.records;
    result.output_bytes += out.output.size();
    for (const auto& [k, v] : out.counters) result.counters[k] += v;
    dfs.put(detail::part_name(job.output, "r", r), std::move(out.output),
            rsched.assigned_node[static_cast<std::size_t>(r)]);
  }

  result.data_local_maps = msched.data_local;
  result.rack_local_maps = msched.rack_local;
  result.remote_maps = msched.remote;
  result.speculative_copies = msched.speculative_copies;
  result.speculative_wins = msched.speculative_wins;
  result.sim_startup_seconds = config.job_startup_seconds +
                               detail::cache_distribution_seconds(dfs, config, job);
  result.sim_map_seconds = msched.makespan;
  result.sim_reduce_seconds = rsched.makespan;
  result.sim_seconds =
      result.sim_startup_seconds + msched.makespan + rsched.makespan;
  result.real_seconds = wall.seconds();
  return result;
}

}  // namespace gepeto::mr
