// Engine glue for the process worker backend (ExecutionBackend::kProcess).
//
// The engine's job impls stay backend-agnostic: every task attempt runs
// through the same detail::run_task_attempts retry loop, and only the
// innermost closure differs — the thread backend runs the attempt body
// inline, the process backend ships it to a fork()ed tasktracker via
// ipc::WorkerPool and this header's wire codecs. A worker death (SIGKILL,
// heartbeat timeout, garbled frame) surfaces as detail::AttemptFailure, i.e.
// exactly like a simulated machine crash, so retries, skip mode,
// blacklisting and max_failed_task_fraction apply unchanged.
//
// The reduce-side "wire shuffle": map workers serialize each partition's
// output — its in-memory tail run plus, under a sort memory budget, the
// metadata of the sorted runs it spilled to scratch files (the file path and
// per-run extents; the run *data* stays on disk) — into an opaque blob; the
// jobtracker never deserializes intermediate keys/values, it just
// concatenates the surviving maps' blobs (in map-task order) into the reduce
// request, and the reduce worker parses and k-way-merges them, streaming
// spilled runs straight from the shared scratch directory (workers are forked
// from the jobtracker, so they see the same filesystem paths). The loser
// tree's tie-break on run index then reproduces the thread backend's
// (map-task order, emission order) exactly — which is why outputs are
// byte-identical across backends, budgeted or not.
//
// The codecs over the engine's attempt-output structs are duck-typed
// templates: those structs are locals of the job impl templates, and the
// process path must not even instantiate for intermediate types that are not
// wire-serializable (the impls guard with `if constexpr`).
#pragma once

#include <cctype>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ipc/wire.h"
#include "ipc/worker_pool.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"
#include "mapreduce/merge.h"
#include "storage/spill.h"
#include "telemetry/telemetry.h"

namespace gepeto::mr::detail {

/// Validate cluster and job knobs at submission. Garbage knobs (negative
/// slots, zero replication, zero bandwidths) used to flow silently into the
/// cost model and produce garbage timings; now they are a structured,
/// catchable JobError instead of UB.
inline void validate_submission(const ClusterConfig& config,
                                const JobConfig& job) {
  auto reject = [&](const std::string& what) {
    throw JobError(JobError::Kind::kInvalidConfig, job.name, /*phase=*/0,
                   /*task_index=*/-1, /*attempts=*/0, what);
  };
  if (config.num_worker_nodes <= 0) reject("num_worker_nodes must be > 0");
  if (config.nodes_per_rack <= 0) reject("nodes_per_rack must be > 0");
  if (config.map_slots_per_node <= 0 || config.reduce_slots_per_node <= 0)
    reject("task slots per node must be > 0");
  if (config.replication <= 0) reject("replication must be > 0");
  if (config.chunk_size == 0) reject("chunk_size must be > 0");
  if (!(config.disk_bandwidth_Bps > 0.0) || !(config.intra_rack_Bps > 0.0) ||
      !(config.inter_rack_Bps > 0.0))
    reject("disk and network bandwidths must be > 0");
  if (!(config.task_startup_seconds >= 0.0) ||
      !(config.job_startup_seconds >= 0.0))
    reject("startup costs must be >= 0");
  if (!(config.compute_scale > 0.0)) reject("compute_scale must be > 0");
  if (!config.node_speed_factor.empty() &&
      config.node_speed_factor.size() !=
          static_cast<std::size_t>(config.num_worker_nodes))
    reject("node_speed_factor must have one entry per worker node");
  for (const double f : config.node_speed_factor)
    if (!(f > 0.0)) reject("node_speed_factor entries must be > 0");
  if (config.blacklist_after_failures < 0)
    reject("blacklist_after_failures must be >= 0");
  if (config.process_workers < 0) reject("process_workers must be >= 0");
  if (config.backend == ExecutionBackend::kProcess) {
    if (!(config.worker_heartbeat_interval_s > 0.0))
      reject("worker_heartbeat_interval_s must be > 0");
    if (!(config.worker_heartbeat_timeout_s >
          config.worker_heartbeat_interval_s))
      reject("worker_heartbeat_timeout_s must exceed the interval");
    if (!(config.worker_respawn_backoff_base_s > 0.0) ||
        config.worker_respawn_backoff_cap_s <
            config.worker_respawn_backoff_base_s)
      reject("worker respawn backoff must satisfy 0 < base <= cap");
  }
  if (job.failures.max_attempts <= 0)
    reject("FailurePolicy::max_attempts must be > 0");
  if (!(job.failures.max_failed_task_fraction >= 0.0 &&
        job.failures.max_failed_task_fraction <= 1.0))
    reject("max_failed_task_fraction must be within [0, 1]");
  if (!(job.failures.task_failure_prob >= 0.0 &&
        job.failures.task_failure_prob <= 1.0))
    reject("task_failure_prob must be within [0, 1]");
}

inline ipc::WorkerPoolOptions worker_pool_options(
    const ClusterConfig& config, const JobConfig& job,
    const telemetry::Telemetry& tel) {
  ipc::WorkerPoolOptions o;
  o.num_workers = config.resolved_process_workers();
  o.heartbeat_interval_s = config.worker_heartbeat_interval_s;
  o.heartbeat_timeout_s = config.worker_heartbeat_timeout_s;
  o.respawn_backoff_base_s = config.worker_respawn_backoff_base_s;
  o.respawn_backoff_cap_s = config.worker_respawn_backoff_cap_s;
  o.seed = config.seed ^ std::hash<std::string>{}(job.name);
  o.telemetry = tel;
  std::string name;
  for (const char c : job.name)
    name.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '-');
  o.name = name.empty() ? "job" : name;
  return o;
}

/// Map a planned FaultPlan::ProcessFault onto the ipc request.
inline void apply_process_fault(const FaultPlan& plan, int phase,
                                std::size_t task, int attempt,
                                ipc::TaskRequest& req) {
  const FaultPlan::ProcessFault* f =
      plan.process_fault_for(phase, static_cast<int>(task), attempt);
  if (f == nullptr) return;
  switch (f->kind) {
    case FaultPlan::ProcessFault::Kind::kSigkillAtRecord:
      req.fault = ipc::ProcFaultKind::kSigkillAtRecord;
      req.fault_record = f->record;
      break;
    case FaultPlan::ProcessFault::Kind::kHangBeforeHeartbeat:
      req.fault = ipc::ProcFaultKind::kHangBeforeHeartbeat;
      break;
    case FaultPlan::ProcessFault::Kind::kGarbledFrame:
      req.fault = ipc::ProcFaultKind::kGarbledFrame;
      break;
  }
}

/// Run one attempt on a worker process. Worker-side task failures and worker
/// deaths both come back as AttemptFailure, feeding the ordinary retry loop;
/// a death is a machine-style crash (record -1), never attributed to a
/// record.
template <typename Out, typename Decode>
Out remote_attempt(ipc::WorkerPool& pool, const JobConfig& job, int phase,
                   std::size_t task, int attempt_no,
                   const std::vector<std::int64_t>& skip, bool inject,
                   std::string payload, Decode&& decode) {
  ipc::TaskRequest req;
  req.phase = phase;
  req.task = static_cast<int>(task);
  req.attempt = attempt_no;
  req.inject_crash = inject;
  req.skip = skip;
  req.payload = std::move(payload);
  apply_process_fault(job.fault_plan, phase, task, attempt_no, req);
  ipc::ExecResult res = pool.execute(std::move(req));
  if (!res.worker_ok) throw AttemptFailure{-1, res.error};
  if (!res.outcome.ok)
    throw AttemptFailure{res.outcome.failed_record, res.outcome.error};
  try {
    return decode(std::string_view(res.outcome.payload));
  } catch (const ipc::wire::WireError& e) {
    throw AttemptFailure{-1,
                         std::string("undecodable worker payload: ") + e.what()};
  }
}

/// Child-side shim: run an attempt body and report through the task
/// protocol. AttemptFailure (task-level crash) becomes a structured failure
/// outcome; anything else escapes and exits the worker with the TaskError
/// exit code (3), exercising the exit taxonomy instead of masking bugs.
template <typename Body>
ipc::TaskOutcome run_child_attempt(Body&& body) {
  try {
    ipc::TaskOutcome out;
    out.ok = true;
    out.payload = body();
    return out;
  } catch (const AttemptFailure& f) {
    ipc::TaskOutcome out;
    out.ok = false;
    out.failed_record = f.record;
    out.error = f.message;
    return out;
  }
}

inline void absorb_worker_stats(JobResult& result,
                                const ipc::WorkerPoolStats& stats) {
  result.worker_deaths = static_cast<int>(stats.deaths());
  result.worker_respawns = static_cast<int>(stats.respawns);
  result.worker_recovery_seconds = stats.total_recovery_s;
}

// --- wire codecs over the engine's attempt-output structs --------------------
// Duck-typed on the local structs of the job impls; instantiated only on the
// `if constexpr`-guarded process path.

template <typename TaskOut>
std::string encode_map_only_out(const TaskOut& o) {
  namespace w = ipc::wire;
  std::string p;
  w::put_str(p, o.output);
  w::put_u64(p, o.records);
  w::put_u64(p, o.input_records);
  w::put_u64(p, o.input_bytes);
  w::put_f64(p, o.cpu_seconds);
  w::put_counters(p, o.counters);
  return p;
}

template <typename TaskOut>
TaskOut decode_map_only_out(std::string_view payload) {
  namespace w = ipc::wire;
  w::Reader r(payload);
  TaskOut o;
  o.output = r.get_str();
  o.records = r.get_u64();
  o.input_records = r.get_u64();
  o.input_bytes = r.get_u64();
  o.cpu_seconds = r.get_f64();
  o.counters = w::get_counters(r);
  return o;
}

/// One partition's map output as an opaque blob: the spill file (path + run
/// extents; run data stays on the shared scratch disk) and the in-memory
/// tail run as count-prefixed keys then values.
template <typename K, typename V>
std::string encode_partition_runs(const storage::PartitionRuns<K, V>& pr) {
  namespace w = ipc::wire;
  std::string blob;
  w::put_str(blob, pr.file);
  w::put_u64(blob, pr.disk_runs.size());
  for (const storage::RunMeta& m : pr.disk_runs) {
    w::put_u64(blob, m.offset);
    w::put_u64(blob, m.bytes);
    w::put_u64(blob, m.records);
  }
  w::put_vec(blob, pr.tail.keys);
  w::put_vec(blob, pr.tail.values);
  return blob;
}

template <typename K, typename V>
storage::PartitionRuns<K, V> decode_partition_runs(std::string_view blob) {
  namespace w = ipc::wire;
  w::Reader r(blob);
  storage::PartitionRuns<K, V> pr;
  pr.file = r.get_str();
  const std::uint64_t n = r.get_u64();
  pr.disk_runs.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    storage::RunMeta m;
    m.offset = r.get_u64();
    m.bytes = r.get_u64();
    m.records = r.get_u64();
    pr.disk_runs.push_back(m);
  }
  pr.tail.keys = w::get_vec<K>(r);
  pr.tail.values = w::get_vec<V>(r);
  if (pr.tail.keys.size() != pr.tail.values.size())
    throw w::WireError("partition blob: key/value count mismatch");
  return pr;
}

/// Map worker -> jobtracker: volumes and counters in the clear, the
/// partition outputs as opaque blobs the jobtracker stores without parsing.
template <typename MapOut, typename K, typename V>
std::string encode_map_out(const MapOut& o) {
  namespace w = ipc::wire;
  std::string p;
  w::put_u64(p, o.raw_records);
  w::put_u64(p, o.combined_records);
  w::put_u64(p, o.raw_bytes);
  w::put_u64(p, o.disk_spill_runs);
  w::put_u64(p, o.disk_spill_bytes);
  w::put_u64(p, o.input_records);
  w::put_u64(p, o.input_bytes);
  w::put_f64(p, o.cpu_seconds);
  w::put_f64(p, o.sort_seconds);
  w::put_f64(p, o.map_parse_seconds);
  w::put_f64(p, o.map_compute_seconds);
  w::put_counters(p, o.counters);
  w::put_vec(p, o.run_bytes);
  w::put_u64(p, o.parts.size());
  for (const storage::PartitionRuns<K, V>& pr : o.parts)
    w::put_str(p, encode_partition_runs(pr));
  return p;
}

template <typename MapOut>
MapOut decode_map_out(std::string_view payload) {
  namespace w = ipc::wire;
  w::Reader r(payload);
  MapOut o;
  o.raw_records = r.get_u64();
  o.combined_records = r.get_u64();
  o.raw_bytes = r.get_u64();
  o.disk_spill_runs = r.get_u64();
  o.disk_spill_bytes = r.get_u64();
  o.input_records = r.get_u64();
  o.input_bytes = r.get_u64();
  o.cpu_seconds = r.get_f64();
  o.sort_seconds = r.get_f64();
  o.map_parse_seconds = r.get_f64();
  o.map_compute_seconds = r.get_f64();
  o.counters = w::get_counters(r);
  o.run_bytes = w::get_vec<std::uint64_t>(r);
  const std::uint64_t n = r.get_u64();
  o.run_blobs.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) o.run_blobs.push_back(r.get_str());
  return o;
}

/// Jobtracker -> reduce worker: the surviving maps' blobs for one partition,
/// concatenated in map-task order (the merge-stability order).
inline std::string encode_reduce_bundle(const std::vector<std::string>& blobs) {
  namespace w = ipc::wire;
  std::string p;
  w::put_u64(p, blobs.size());
  for (const std::string& b : blobs) w::put_str(p, b);
  return p;
}

/// Parse + drop partitions with no records at all, preserving arrival
/// (map-task) order.
template <typename K, typename V>
std::vector<storage::PartitionRuns<K, V>> parse_partition_bundle(
    std::string_view payload) {
  namespace w = ipc::wire;
  w::Reader r(payload);
  const std::uint64_t n = r.get_u64();
  std::vector<storage::PartitionRuns<K, V>> parts;
  parts.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    storage::PartitionRuns<K, V> pr = decode_partition_runs<K, V>(r.get_str());
    if (!pr.empty()) parts.push_back(std::move(pr));
  }
  return parts;
}

template <typename ReduceOut>
std::string encode_reduce_out(const ReduceOut& o) {
  namespace w = ipc::wire;
  std::string p;
  w::put_str(p, o.output);
  w::put_u64(p, o.records);
  w::put_u64(p, o.groups);
  w::put_f64(p, o.cpu_seconds);
  w::put_f64(p, o.merge_seconds);
  w::put_f64(p, o.external_merge_seconds);
  w::put_u64(p, o.merged_runs);
  w::put_counters(p, o.counters);
  return p;
}

template <typename ReduceOut>
ReduceOut decode_reduce_out(std::string_view payload) {
  namespace w = ipc::wire;
  w::Reader r(payload);
  ReduceOut o;
  o.output = r.get_str();
  o.records = r.get_u64();
  o.groups = r.get_u64();
  o.cpu_seconds = r.get_f64();
  o.merge_seconds = r.get_f64();
  o.external_merge_seconds = r.get_f64();
  o.merged_runs = r.get_u64();
  o.counters = w::get_counters(r);
  return o;
}

}  // namespace gepeto::mr::detail
