// Text-line iteration helpers shared by drivers and tasks.
//
// Several pipelines move small side tables through the DFS as newline-
// separated text — the distributed-cache pattern (a native flow node
// consolidates job parts into one cache file; every task of the next job
// parses it in setup()), and the reduce-side join idiom the attack suite's
// two-release linking uses. These helpers centralize the line walk so each
// mapper's setup() is just the per-line parse.
#pragma once

#include <string>
#include <string_view>

#include "mapreduce/dfs.h"

namespace gepeto::mr {

/// Invoke `fn(std::string_view line)` for every non-empty line of `data`.
/// A trailing newline is optional; empty lines are skipped, not errors.
template <typename Fn>
void for_each_line(std::string_view data, Fn&& fn) {
  std::size_t start = 0;
  while (start < data.size()) {
    std::size_t end = data.find('\n', start);
    if (end == std::string_view::npos) end = data.size();
    if (end > start) fn(data.substr(start, end - start));
    start = end + 1;
  }
}

/// Invoke `fn(std::string_view line)` for every non-empty line of every DFS
/// file under `prefix` (in list() order — deterministic part order). The
/// driver-side half of the distributed-cache / join pattern.
template <typename Fn>
void for_each_dfs_line(const Dfs& dfs, const std::string& prefix, Fn&& fn) {
  for (const auto& path : dfs.list(prefix)) for_each_line(dfs.read(path), fn);
}

/// Concatenate every DFS file under `prefix` into one string — the native
/// consolidation step that turns a job's part files into a single
/// distributed-cache file.
inline std::string concat_dfs_files(const Dfs& dfs, const std::string& prefix) {
  std::string out;
  for (const auto& path : dfs.list(prefix)) out.append(dfs.read(path));
  return out;
}

}  // namespace gepeto::mr
