// Job-level types shared by the engine: configuration, counters, results,
// failure injection policy, and the byte-size trait used for shuffle
// accounting.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/check.h"
#include "telemetry/telemetry.h"

namespace gepeto::mr {

/// Thrown by task code (map / reduce / combine / setup / cleanup) to signal a
/// recoverable task failure — a malformed record, a transient resource error.
/// The engine discards the attempt's partial output and re-executes the task
/// up to FailurePolicy::max_attempts times, exactly as a Hadoop task JVM
/// crash would be retried by the jobtracker. Any other exception type is a
/// programming error and still propagates.
class TaskError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by the engine when a job fails as a whole. Unlike CheckFailure
/// (which marks a broken invariant), a JobError is an expected runtime
/// outcome that callers may catch: e.g. the k-means driver resumes from its
/// last centroid checkpoint after one.
class JobError : public std::runtime_error {
 public:
  enum class Kind {
    kAttemptsExhausted,    ///< a task failed FailurePolicy::max_attempts times
    kSkipBudgetExhausted,  ///< skip mode ran out of max_skipped_records
    kDataLoss,             ///< an input split lost every DFS replica
    kTooManyFailedTasks,   ///< failed tasks exceed max_failed_task_fraction
    kCorruptCheckpoint,    ///< a resume checkpoint failed to parse
    kInvalidConfig,        ///< cluster/job knobs rejected at submission
  };

  JobError(Kind kind, std::string job_name, int phase, int task_index,
           int attempts, const std::string& detail);

  Kind kind() const { return kind_; }
  const std::string& job_name() const { return job_name_; }
  /// 1 = map, 2 = reduce (matching the failure-injection phase ids).
  int phase() const { return phase_; }
  /// Index of the task that sank the job, or -1 when not task-specific.
  int task_index() const { return task_index_; }
  /// Attempts consumed by that task before the job was failed.
  int attempts() const { return attempts_; }

 protected:
  /// For subclasses (e.g. flow::FlowError) that keep the structured fields
  /// of `cause` but extend its message.
  JobError(const JobError& cause, const std::string& message_suffix);

 private:
  Kind kind_;
  std::string job_name_;
  int phase_;
  int task_index_;
  int attempts_;
};

/// Deterministic chaos plan. Every decision is derived from `seed` and the
/// (phase, task, attempt) coordinates — never from wall clock or host thread
/// interleaving — so a plan reproduces byte-identical runs.
struct FaultPlan {
  std::uint64_t seed = 0;

  /// Crash exactly this attempt of this task (phase: 1 = map, 2 = reduce).
  /// Listing attempts 0 .. max_attempts-1 of one task drives it to
  /// exhaustion and fails the job with JobError.
  struct AttemptCrash {
    int phase = 1;
    int task = 0;
    int attempt = 0;
  };
  std::vector<AttemptCrash> crashes;

  /// Additionally crash any attempt with this probability, seeded per
  /// (phase, task, attempt) so the outcome is independent of execution order.
  double attempt_crash_prob = 0.0;

  /// Kill a datanode once `after_map_tasks` map tasks have completed
  /// (0 = before the first map wave). The engine re-resolves split replicas,
  /// runs DFS re-replication, charges the copy time to the simulated clock,
  /// and surfaces true data loss as JobError / failed tasks.
  struct NodeKill {
    int node = 0;
    int after_map_tasks = 0;
  };
  std::vector<NodeKill> node_kills;

  /// Process-level faults, honored only by the process backend
  /// (ClusterConfig::backend == ExecutionBackend::kProcess): the chosen
  /// attempt runs in a worker that really dies or misbehaves, and the
  /// jobtracker's heartbeat/reap/respawn machinery — not a simulated throw —
  /// must recover. Like AttemptCrash, addressed by (phase, task, attempt).
  struct ProcessFault {
    enum class Kind {
      kSigkillAtRecord,      ///< worker raises SIGKILL at input record N
      kHangBeforeHeartbeat,  ///< worker hangs before its first heartbeat
      kGarbledFrame,         ///< worker corrupts the CRC of its result frame
    };
    int phase = 1;
    int task = 0;
    int attempt = 0;
    Kind kind = Kind::kSigkillAtRecord;
    std::int64_t record = 0;  ///< for kSigkillAtRecord: die at this record
  };
  std::vector<ProcessFault> process_faults;

  /// The process fault planned for this attempt, or nullptr.
  const ProcessFault* process_fault_for(int phase, int task,
                                        int attempt) const;

  /// Content-addressed poison records: when > 0, a map input record whose
  /// content hash is ≡ 0 (mod poison_modulus) throws TaskError from inside
  /// the map call. Because the decision hashes the record *bytes* (not the
  /// task/offset coordinates), the same logical records are poisoned no
  /// matter how the input is chunked or which node runs the task — exactly
  /// what an oracle needs to predict which records Hadoop skip mode drops.
  std::uint64_t poison_modulus = 0;

  bool crashes_attempt(int phase, int task, int attempt) const;

  /// True iff `record` is a poison record under `poison_modulus` (and the
  /// plan's seed). Deterministic pure function of the record bytes.
  bool poisons_record(std::string_view record) const;

  bool empty() const {
    return crashes.empty() && attempt_crash_prob <= 0.0 &&
           node_kills.empty() && poison_modulus == 0 && process_faults.empty();
  }
};

/// Failure handling policy: each task attempt may fail (injected via
/// `task_failure_prob` / FaultPlan, or for real via TaskError); the engine
/// re-executes it up to `max_attempts` times, as Hadoop does.
struct FailurePolicy {
  double task_failure_prob = 0.0;
  int max_attempts = 4;
  /// Hadoop skip mode (SkipBadRecords): when > 0, a record that crashes two
  /// consecutive attempts of a task is pinpointed and skipped on the next
  /// attempt. Each task may skip at most this many records; pinpointing a
  /// bad record refreshes the task's attempt budget (progress was made).
  std::uint64_t max_skipped_records = 0;
  /// Fraction of *map* tasks allowed to fail permanently without failing the
  /// job (mapred.max.map.failures.percent / 100). Failed tasks contribute no
  /// output; the loss is reported in JobResult::failed_tasks. Reduce task
  /// exhaustion always fails the job.
  double max_failed_task_fraction = 0.0;
};

struct JobConfig {
  std::string name = "job";
  /// DFS path prefix: every file under it is an input (like an HDFS input
  /// directory). Each chunk of each input file becomes one map task.
  std::string input;
  /// DFS output directory; task t writes `output + "/part-..."`.
  std::string output;
  int num_reducers = 1;  ///< 0 is invalid here; use run_map_only_job instead
  bool use_combiner = false;
  /// Out-of-core shuffle: when > 0, each map task's emit buffers are bounded
  /// to this many bytes in total — once the accounted bytes (approx_bytes at
  /// emit time) across all partitions reach the budget, every partition
  /// buffer is sorted and spilled to a scratch file as one sorted run
  /// (Hadoop's sort-and-spill pass), and reducers external-merge the disk
  /// runs with the same loser tree the in-memory path uses, so outputs are
  /// byte-identical at any budget. 0 (the default) keeps everything in
  /// memory. Requires
  /// wire-serializable intermediate key/value types (the spill-file format);
  /// $GEPETO_SORT_MEMORY_BUDGET supplies a best-effort default when unset.
  std::uint64_t sort_memory_budget_bytes = 0;
  /// DFS files broadcast to every task (Hadoop distributed cache).
  std::vector<std::string> cache_files;
  FailurePolicy failures;
  /// Deterministic fault injection experienced by the real execution.
  FaultPlan fault_plan;
  /// Optional tracing/metrics sinks for this job. Null (the default) means
  /// no telemetry work at all. When null, the engine falls back to the
  /// ambient handle installed on the Dfs (Dfs::set_telemetry), so drivers
  /// deep inside flows need no plumbing.
  telemetry::Telemetry telemetry;
};

/// Per-job counters, merged from all tasks (deterministic given the seed).
using Counters = std::map<std::string, std::int64_t>;

namespace detail {

/// Internal: one attempt crashed. `record` is the input key (line offset /
/// record index / reduce group ordinal) the task was processing, or -1 when
/// the crash is not attributable to a record (machine-style failure).
/// Defined here (not engine.h) so the process backend's wire glue can
/// translate worker-side failures without pulling in the whole engine.
struct AttemptFailure {
  std::int64_t record = -1;
  std::string message;
};

}  // namespace detail

/// How a map task's input chunk was placed relative to the node that ran it
/// in the simulated schedule.
enum class Locality { kDataLocal, kRackLocal, kRemote };

struct JobResult {
  std::string job_name;

  int num_map_tasks = 0;
  int num_reduce_tasks = 0;

  std::uint64_t input_bytes = 0;
  std::uint64_t map_input_records = 0;
  std::uint64_t map_output_records = 0;
  std::uint64_t map_output_bytes = 0;       ///< before the combiner
  std::uint64_t combine_output_records = 0; ///< == map_output_records if none
  std::uint64_t shuffle_bytes = 0;          ///< bytes crossing mapper->reducer
  std::uint64_t spill_runs = 0;             ///< sorted map-output runs merged
  /// Out-of-core shuffle (sort_memory_budget_bytes > 0; zero otherwise):
  /// sorted runs spilled to scratch files and their on-disk bytes.
  std::uint64_t disk_spill_runs = 0;
  std::uint64_t disk_spill_bytes = 0;
  std::uint64_t reduce_input_groups = 0;
  std::uint64_t output_records = 0;
  std::uint64_t output_bytes = 0;

  // Simulated-schedule locality of map tasks.
  int data_local_maps = 0;
  int rack_local_maps = 0;
  int remote_maps = 0;

  int failed_task_attempts = 0;
  int speculative_copies = 0;  ///< backup map attempts (speculation enabled)
  int speculative_wins = 0;    ///< backups that beat the original attempt

  // Fault-tolerance outcome of the real execution.
  int failed_tasks = 0;             ///< permanently failed map tasks (tolerated)
  std::uint64_t skipped_records = 0;  ///< bad records skipped (skip mode)
  int blacklisted_nodes = 0;        ///< nodes the virtual jobtracker excluded
  int lost_chunks = 0;              ///< chunks that lost every replica mid-job

  // Process backend only (zero under the thread backend): real worker
  // processes that died / were respawned while this job ran, and the wall
  // time spent between detecting each death and having its replacement live.
  int worker_deaths = 0;
  int worker_respawns = 0;
  double worker_recovery_seconds = 0.0;

  // Real execution on host threads.
  double real_seconds = 0.0;
  /// Wall seconds map attempts spent sorting (and re-sorting after the
  /// combiner) their partition spill buffers, summed over attempts.
  double sort_seconds = 0.0;
  /// Wall seconds reduce tasks spent k-way-merging the sorted map runs.
  double merge_seconds = 0.0;
  /// Wall seconds reduce attempts spent reading + decoding spilled run
  /// frames during the streaming external merge (out-of-core path only).
  double external_merge_seconds = 0.0;
  /// Map-loop wall time split, summed over successful map attempts: kernel
  /// time the mapper attributed via TaskContext::add_compute_seconds
  /// (map_compute_seconds) vs everything else in the record loop — record
  /// decode, text parsing, emit (map_parse_seconds). Proves where the map
  /// phase spent its time (BENCH_table3_kmeans.json).
  double map_parse_seconds = 0.0;
  double map_compute_seconds = 0.0;

  // Simulated cluster clock (deterministic).
  double sim_startup_seconds = 0.0;
  double sim_map_seconds = 0.0;      ///< map phase makespan
  double sim_reduce_seconds = 0.0;   ///< shuffle + sort + reduce makespan
  double sim_recovery_seconds = 0.0; ///< DFS re-replication after node deaths
  double sim_seconds = 0.0;  ///< total = startup + map + recovery + reduce

  Counters counters;

  /// Merge a follow-up job of a pipeline into this result (sums volumes and
  /// times; locality counters accumulate).
  void absorb(const JobResult& next);
};

/// Approximate serialized size of a key or value, used for map-output and
/// shuffle byte accounting (what Hadoop would move between nodes).
template <typename T>
std::uint64_t approx_bytes(const T& v) {
  if constexpr (std::is_arithmetic_v<std::decay_t<T>>) {
    (void)v;
    return sizeof(T);
  } else if constexpr (requires { v.serialized_size(); }) {
    return v.serialized_size();
  } else if constexpr (requires { v.size(); v.data(); }) {
    return v.size();  // string-like
  } else {
    static_assert(sizeof(T) == 0,
                  "provide serialized_size() for shuffle accounting");
  }
}

}  // namespace gepeto::mr
