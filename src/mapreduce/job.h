// Job-level types shared by the engine: configuration, counters, results,
// failure injection policy, and the byte-size trait used for shuffle
// accounting.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "common/check.h"

namespace gepeto::mr {

/// Failure injection: each task attempt fails independently with
/// `task_failure_prob`; the jobtracker re-executes it (on a different node in
/// the simulated schedule) up to `max_attempts` times, as Hadoop does.
struct FailurePolicy {
  double task_failure_prob = 0.0;
  int max_attempts = 4;
};

struct JobConfig {
  std::string name = "job";
  /// DFS path prefix: every file under it is an input (like an HDFS input
  /// directory). Each chunk of each input file becomes one map task.
  std::string input;
  /// DFS output directory; task t writes `output + "/part-..."`.
  std::string output;
  int num_reducers = 1;  ///< 0 is invalid here; use run_map_only_job instead
  bool use_combiner = false;
  /// DFS files broadcast to every task (Hadoop distributed cache).
  std::vector<std::string> cache_files;
  FailurePolicy failures;
};

/// Per-job counters, merged from all tasks (deterministic given the seed).
using Counters = std::map<std::string, std::int64_t>;

/// How a map task's input chunk was placed relative to the node that ran it
/// in the simulated schedule.
enum class Locality { kDataLocal, kRackLocal, kRemote };

struct JobResult {
  std::string job_name;

  int num_map_tasks = 0;
  int num_reduce_tasks = 0;

  std::uint64_t input_bytes = 0;
  std::uint64_t map_input_records = 0;
  std::uint64_t map_output_records = 0;
  std::uint64_t map_output_bytes = 0;       ///< before the combiner
  std::uint64_t combine_output_records = 0; ///< == map_output_records if none
  std::uint64_t shuffle_bytes = 0;          ///< bytes crossing mapper->reducer
  std::uint64_t reduce_input_groups = 0;
  std::uint64_t output_records = 0;
  std::uint64_t output_bytes = 0;

  // Simulated-schedule locality of map tasks.
  int data_local_maps = 0;
  int rack_local_maps = 0;
  int remote_maps = 0;

  int failed_task_attempts = 0;
  int speculative_copies = 0;  ///< backup map attempts (speculation enabled)
  int speculative_wins = 0;    ///< backups that beat the original attempt

  // Real execution on host threads.
  double real_seconds = 0.0;

  // Simulated cluster clock (deterministic).
  double sim_startup_seconds = 0.0;
  double sim_map_seconds = 0.0;      ///< map phase makespan
  double sim_reduce_seconds = 0.0;   ///< shuffle + sort + reduce makespan
  double sim_seconds = 0.0;          ///< total = startup + map + reduce

  Counters counters;

  /// Merge a follow-up job of a pipeline into this result (sums volumes and
  /// times; locality counters accumulate).
  void absorb(const JobResult& next);
};

/// Approximate serialized size of a key or value, used for map-output and
/// shuffle byte accounting (what Hadoop would move between nodes).
template <typename T>
std::uint64_t approx_bytes(const T& v) {
  if constexpr (std::is_arithmetic_v<std::decay_t<T>>) {
    (void)v;
    return sizeof(T);
  } else if constexpr (requires { v.serialized_size(); }) {
    return v.serialized_size();
  } else if constexpr (requires { v.size(); v.data(); }) {
    return v.size();  // string-like
  } else {
    static_assert(sizeof(T) == 0,
                  "provide serialized_size() for shuffle accounting");
  }
}

}  // namespace gepeto::mr
