#include "mapreduce/seqfile.h"

#include <cstring>

#include "common/check.h"
#include "common/random.h"

namespace gepeto::mr {

namespace {

constexpr std::size_t kHeaderSize = 4 + kSeqSyncSize;

std::array<unsigned char, kSeqSyncSize> make_sync(std::uint64_t seed) {
  SplitMix64 sm(seed ^ 0x5EC5'11ECULL);
  std::array<unsigned char, kSeqSyncSize> sync{};
  for (std::size_t i = 0; i < kSeqSyncSize; i += 8) {
    const std::uint64_t v = sm.next();
    std::memcpy(sync.data() + i, &v, 8);
  }
  return sync;
}

void append_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

std::uint32_t read_u32(std::string_view file, std::uint64_t pos) {
  std::uint32_t v = 0;
  std::memcpy(&v, file.data() + pos, 4);
  return v;
}

}  // namespace

SeqFileWriter::SeqFileWriter(std::uint64_t sync_seed,
                             std::size_t sync_interval)
    : sync_(make_sync(sync_seed)), sync_interval_(sync_interval) {
  GEPETO_CHECK(sync_interval_ > 0);
  out_ = "SEQ1";
  out_.append(reinterpret_cast<const char*>(sync_.data()), kSeqSyncSize);
}

void SeqFileWriter::write_sync() {
  append_u32(out_, kSeqSyncEscape);
  out_.append(reinterpret_cast<const char*>(sync_.data()), kSeqSyncSize);
  bytes_since_sync_ = 0;
}

void SeqFileWriter::append(std::string_view record) {
  GEPETO_CHECK_MSG(record.size() < kSeqSyncEscape, "record too large");
  if (bytes_since_sync_ >= sync_interval_) write_sync();
  append_u32(out_, static_cast<std::uint32_t>(record.size()));
  out_.append(record);
  bytes_since_sync_ += 4 + record.size();
  ++records_;
}

SeqFileReader::SeqFileReader(std::string_view file, std::uint64_t split_start,
                             std::uint64_t split_len)
    : file_(file) {
  GEPETO_CHECK(split_start + split_len <= file.size());
  GEPETO_CHECK_MSG(file.size() >= kHeaderSize &&
                       file.substr(0, 4) == "SEQ1",
                   "not a seq file");
  std::memcpy(sync_.data(), file.data() + 4, kSeqSyncSize);
  split_end_ = split_start + split_len;

  const std::string_view marker(
      reinterpret_cast<const char*>(sync_.data()), kSeqSyncSize);
  if (split_start == 0) {
    // The first split owns the group right after the header.
    if (kHeaderSize <= split_end_) {
      pos_ = kHeaderSize;
    } else {
      done_ = true;
    }
    return;
  }
  // Find the first sync marker whose END lies in (start, end].
  std::size_t p = file_.find(
      marker, split_start >= kSeqSyncSize - 1 ? split_start - (kSeqSyncSize - 1)
                                              : 0);
  while (p != std::string_view::npos && p + kSeqSyncSize <= split_start)
    p = file_.find(marker, p + 1);
  if (p == std::string_view::npos || p + kSeqSyncSize > split_end_) {
    done_ = true;
    return;
  }
  pos_ = p + kSeqSyncSize;
}

bool SeqFileReader::next() {
  while (!done_) {
    if (pos_ + 4 > file_.size()) {
      done_ = true;
      return false;
    }
    const std::uint32_t len = read_u32(file_, pos_);
    if (len == kSeqSyncEscape) {
      const std::uint64_t group_start = pos_ + 4 + kSeqSyncSize;
      if (group_start > split_end_) {
        done_ = true;  // the next group belongs to the next split
        return false;
      }
      GEPETO_CHECK_MSG(group_start <= file_.size(), "truncated sync marker");
      pos_ = group_start;
      continue;
    }
    GEPETO_CHECK_MSG(pos_ + 4 + len <= file_.size(), "truncated record");
    record_ = file_.substr(pos_ + 4, len);
    pos_ += 4 + len;
    return true;
  }
  return false;
}

bool SeqFileReader::at_sync() const {
  return pos_ + 4 <= file_.size() && read_u32(file_, pos_) == kSeqSyncEscape;
}

}  // namespace gepeto::mr
