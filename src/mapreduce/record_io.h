// Text record I/O with Hadoop split semantics.
//
// A map task processes one DFS chunk ("input split"), but text lines do not
// align with chunk boundaries. Hadoop's LineRecordReader rule, reproduced
// here exactly:
//   * a split that does not start at file offset 0 discards the (possibly
//     partial) first line — it belongs to the previous split;
//   * a split keeps reading past its end to finish the last line that
//     *started* inside it.
// Under this rule every line of the file is processed by exactly one split,
// which the tests verify for arbitrary chunk sizes.
#pragma once

#include <cstdint>
#include <string_view>

namespace gepeto::mr {

/// Iterates the records of one input split of a text file.
class LineRecordReader {
 public:
  /// `file` is the whole file's bytes; the split is [split_start,
  /// split_start + split_len) within it.
  LineRecordReader(std::string_view file, std::uint64_t split_start,
                   std::uint64_t split_len);

  /// Advance to the next record. Returns false at end of split.
  /// After a true return, key() is the byte offset of the line within the
  /// file (Hadoop's TextInputFormat key) and value() the line content
  /// without the trailing '\n'.
  bool next();

  std::int64_t key() const { return static_cast<std::int64_t>(line_start_); }
  std::string_view value() const { return line_; }

  /// Bytes this reader consumed beyond the nominal split length (the tail of
  /// the last record) — charged to the task's I/O accounting.
  std::uint64_t overread_bytes() const;

  /// File offset of the next record this reader would look at: after
  /// construction, the start of the split's first record (past any discarded
  /// partial line); after next() returns false, the start of the first
  /// record owned by the following split. Always a line start (or EOF).
  std::uint64_t next_record_offset() const { return pos_; }

 private:
  std::string_view file_;
  std::uint64_t pos_ = 0;         ///< next byte to examine
  std::uint64_t split_end_ = 0;   ///< records starting at >= this are not ours
  std::uint64_t line_start_ = 0;
  std::string_view line_;
  std::uint64_t nominal_end_ = 0;
  bool done_ = false;
};

/// The complete line that ends with the '\n' at `record_start - 1`, without
/// the '\n'. `record_start` must be the file offset of a record (a line
/// start) with `record_start > 0` — i.e. there *is* a previous line.
inline std::string_view line_ending_before(std::string_view file,
                                           std::uint64_t record_start) {
  std::uint64_t end = record_start - 1;  // the terminating '\n'
  std::uint64_t begin = end;
  while (begin > 0 && file[begin - 1] != '\n') --begin;
  return file.substr(begin, end - begin);
}

}  // namespace gepeto::mr
