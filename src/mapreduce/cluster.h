// Cluster topology and cost model.
//
// The paper evaluates on a Hadoop deployment over the Grid'5000 Parapluie
// cluster: one dedicated namenode, one dedicated jobtracker, and N worker
// nodes each acting as datanode + tasktracker. We reproduce that topology.
//
// Tasks execute for real on host threads (for correctness and real-time
// measurements), and the engine additionally charges a deterministic
// *simulated cluster clock*: per-task cost = task startup + disk read +
// network transfer for non-local reads + CPU time scaled to a modeled node.
// The simulated clock is what reproduces cluster-shaped results (speedup vs
// nodes, chunk-size effects, shuffle costs) independent of host parallelism.
#pragma once

#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/check.h"

namespace gepeto::mr {

inline constexpr std::size_t kKiB = 1024;
inline constexpr std::size_t kMiB = 1024 * 1024;

/// How task attempts actually execute on the host.
enum class ExecutionBackend {
  /// Every tasktracker is a thread in the jobtracker's process (fast, but a
  /// crashing task would take the whole job down — failures are simulated).
  kThread,
  /// Every tasktracker is a fork()ed child process talking to the
  /// jobtracker over a framed local socket (ipc/worker_pool.h): tasks can
  /// really be SIGKILLed, hang, or corrupt their output, and the job
  /// survives. Slower per task (serialization + IPC), same results —
  /// byte-identical outputs are the contract.
  kProcess,
};

struct ClusterConfig {
  /// Worker nodes (each is a datanode + tasktracker). The namenode and
  /// jobtracker are dedicated machines, as in the paper's deployment.
  int num_worker_nodes = 7;

  /// Nodes per rack; rack id of node n is n / nodes_per_rack.
  int nodes_per_rack = 8;

  int map_slots_per_node = 2;
  int reduce_slots_per_node = 2;

  /// HDFS replication factor (default 3, rack-aware placement).
  int replication = 3;

  /// DFS chunk ("block") size. The paper uses 32 MB and 64 MB.
  std::size_t chunk_size = 64 * kMiB;

  // --- simulated cost model (2013-era commodity cluster) -----------------
  double disk_bandwidth_Bps = 90.0 * 1e6;    ///< sequential read/write
  double intra_rack_Bps = 110.0 * 1e6;       ///< ~1 GbE within a rack
  double inter_rack_Bps = 45.0 * 1e6;        ///< oversubscribed cross-rack
  double task_startup_seconds = 0.8;         ///< JVM + task setup per attempt
  double job_startup_seconds = 3.0;          ///< job submission / scheduling
  /// Simulated node compute time = measured host CPU seconds * this factor.
  /// >1 models a 2013 node slower than the host per-core.
  double compute_scale = 1.0;

  /// When > 0, task CPU cost is *modeled* instead of measured: cpu_seconds =
  /// records processed * this value (then scaled by compute_scale as usual).
  /// Measured host CPU time varies run to run, so the default cost model
  /// yields slightly different simulated times on each execution; this
  /// switch makes the whole virtual timeline — and therefore telemetry
  /// trace exports — byte-identical across runs at a fixed seed.
  double modeled_seconds_per_record = 0.0;

  /// When false, the virtual jobtracker assigns map tasks to free slots
  /// ignoring where the data lives (ablation of Hadoop's locality-aware
  /// scheduling; transfer costs still apply).
  bool locality_aware_scheduling = true;

  /// Hadoop's speculative execution: once no map tasks are pending, idle
  /// slots launch backup copies of the slowest running attempts; the task
  /// finishes when either copy does.
  bool speculative_execution = false;

  /// Per-node slowdown factors (empty = homogeneous cluster). A value of
  /// 2.0 makes every attempt on that node take twice as long — the
  /// straggler model speculative execution exists to fight.
  std::vector<double> node_speed_factor;

  /// Hadoop's tasktracker blacklisting (mapred.max.tracker.failures): once
  /// this many failed attempts land on one node within a phase, the virtual
  /// jobtracker stops assigning work to it for the rest of the phase.
  /// 0 disables blacklisting. The last usable node is never blacklisted.
  int blacklist_after_failures = 0;

  double speed_of(int node) const {
    if (node_speed_factor.empty()) return 1.0;
    GEPETO_DCHECK(node >= 0 &&
                  static_cast<std::size_t>(node) < node_speed_factor.size());
    return node_speed_factor[static_cast<std::size_t>(node)];
  }

  // --- real execution ------------------------------------------------------
  /// Host threads used to actually execute tasks (0 = hardware concurrency).
  unsigned execution_threads = 0;

  /// Which backend executes task attempts (see ExecutionBackend).
  ExecutionBackend backend = ExecutionBackend::kThread;
  /// Worker processes for the process backend (0 = one per execution
  /// thread). Ignored by the thread backend.
  int process_workers = 0;
  /// Process-backend liveness knobs: a busy worker heartbeats every
  /// `interval` seconds; the jobtracker SIGKILLs it after `timeout` seconds
  /// of silence and respawns it with exponential backoff in
  /// [base, cap] seconds (jittered).
  double worker_heartbeat_interval_s = 0.2;
  double worker_heartbeat_timeout_s = 5.0;
  double worker_respawn_backoff_base_s = 0.05;
  double worker_respawn_backoff_cap_s = 2.0;

  std::uint64_t seed = 0xC0FFEE;

  int total_map_slots() const { return num_worker_nodes * map_slots_per_node; }
  int total_reduce_slots() const {
    return num_worker_nodes * reduce_slots_per_node;
  }
  int rack_of(int node) const {
    GEPETO_DCHECK(node >= 0 && node < num_worker_nodes);
    return node / nodes_per_rack;
  }
  int num_racks() const {
    return (num_worker_nodes + nodes_per_rack - 1) / nodes_per_rack;
  }
  unsigned resolved_execution_threads() const {
    if (execution_threads != 0) return execution_threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1u : hw;
  }
  int resolved_process_workers() const {
    return process_workers > 0
               ? process_workers
               : static_cast<int>(resolved_execution_threads());
  }

  void validate() const {
    GEPETO_CHECK(num_worker_nodes > 0);
    GEPETO_CHECK(nodes_per_rack > 0);
    GEPETO_CHECK(map_slots_per_node > 0);
    GEPETO_CHECK(reduce_slots_per_node > 0);
    GEPETO_CHECK(replication > 0);
    GEPETO_CHECK(chunk_size > 0);
    GEPETO_CHECK(disk_bandwidth_Bps > 0 && intra_rack_Bps > 0 &&
                 inter_rack_Bps > 0);
    GEPETO_CHECK_MSG(node_speed_factor.empty() ||
                         node_speed_factor.size() ==
                             static_cast<std::size_t>(num_worker_nodes),
                     "node_speed_factor must have one entry per worker node");
    for (double f : node_speed_factor) GEPETO_CHECK(f > 0.0);
    GEPETO_CHECK(blacklist_after_failures >= 0);
  }
};

}  // namespace gepeto::mr
