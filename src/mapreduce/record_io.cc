#include "mapreduce/record_io.h"

#include "common/check.h"

namespace gepeto::mr {

LineRecordReader::LineRecordReader(std::string_view file,
                                   std::uint64_t split_start,
                                   std::uint64_t split_len)
    : file_(file) {
  GEPETO_CHECK(split_start <= file.size());
  GEPETO_CHECK(split_start + split_len <= file.size());
  pos_ = split_start;
  split_end_ = split_start + split_len;
  nominal_end_ = split_end_;

  if (split_start != 0) {
    // Skip the partial first line: it is owned by the previous split. Note
    // that if byte split_start-1 is '\n', the line starting exactly at
    // split_start is a complete line and is ours — Hadoop implements this by
    // unconditionally reading-and-discarding one line starting at
    // split_start - 1 ... we get the same effect by checking the previous
    // byte directly.
    if (file_[split_start - 1] != '\n') {
      while (pos_ < file_.size() && file_[pos_] != '\n') ++pos_;
      if (pos_ < file_.size()) ++pos_;  // step over the '\n'
    }
  }
}

bool LineRecordReader::next() {
  if (done_ || pos_ >= file_.size() || pos_ >= split_end_) {
    done_ = true;
    return false;
  }
  line_start_ = pos_;
  std::uint64_t end = pos_;
  while (end < file_.size() && file_[end] != '\n') ++end;
  line_ = file_.substr(line_start_, end - line_start_);
  pos_ = end < file_.size() ? end + 1 : end;
  return true;
}

std::uint64_t LineRecordReader::overread_bytes() const {
  return pos_ > nominal_end_ ? pos_ - nominal_end_ : 0;
}

}  // namespace gepeto::mr
