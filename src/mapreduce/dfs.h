// An in-memory distributed file system modeled after HDFS.
//
// Files are split into fixed-size chunks. The namenode metadata records, for
// each chunk, the set of datanodes holding a replica; placement follows the
// HDFS rack-aware policy described in the paper (Section III): first replica
// on the writer's node, second on a different node in the same rack, third on
// a node in a different rack chosen at random. Node failures drop replicas;
// re_replicate() restores the replication factor from surviving copies.
//
// Contents are held in host memory (one contiguous buffer per file) — the
// simulated ingest/read costs are charged through the cluster cost model.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "mapreduce/cluster.h"
#include "telemetry/telemetry.h"

namespace gepeto::mr {

/// Metadata for one chunk of a file.
struct ChunkInfo {
  std::uint64_t offset = 0;       ///< byte offset within the file
  std::uint64_t size = 0;         ///< byte length (<= chunk_size)
  std::vector<int> replicas;      ///< datanodes holding a copy (live ones)
};

/// A chunk whose every replica died — the bytes are unrecoverable (callers
/// decide whether that is tolerable, e.g. via FailurePolicy).
struct LostChunk {
  std::string path;
  std::size_t chunk_index = 0;
  std::uint64_t bytes = 0;
};

/// Outcome of one re-replication sweep.
struct ReReplicationReport {
  std::size_t created = 0;        ///< new replicas placed
  std::uint64_t moved_bytes = 0;  ///< bytes copied between datanodes
  /// Modeled copy time: each new replica is read from a surviving copy and
  /// streamed to its new node (sequentially, as one NameNode replication
  /// queue worker would drain it).
  double sim_seconds = 0.0;
  std::vector<LostChunk> lost;    ///< chunks with no surviving replica
  bool data_loss() const { return !lost.empty(); }
};

/// Aggregate DFS statistics.
struct DfsStats {
  std::uint64_t files = 0;
  std::uint64_t logical_bytes = 0;   ///< sum of file sizes
  std::uint64_t stored_bytes = 0;    ///< logical_bytes * live replicas
  std::uint64_t chunks = 0;
  double sim_ingest_seconds = 0.0;   ///< modeled time spent writing data in
};

class Dfs {
 public:
  explicit Dfs(const ClusterConfig& config);

  // Non-copyable: the DFS is the single source of truth for a cluster run.
  Dfs(const Dfs&) = delete;
  Dfs& operator=(const Dfs&) = delete;

  /// Write a file (replaces any existing file at `path`). The writer node
  /// determines first-replica placement; pass -1 for an external client
  /// (placement starts at a random node, as when loading data into HDFS).
  void put(const std::string& path, std::string contents, int writer_node = -1);

  bool exists(const std::string& path) const;
  void remove(const std::string& path);
  /// Remove every file whose path starts with `prefix`.
  void remove_prefix(const std::string& prefix);

  /// All file paths with the given prefix, in lexicographic order.
  std::vector<std::string> list(const std::string& prefix) const;

  /// Whole-file read (view is valid until the file is removed/replaced).
  std::string_view read(const std::string& path) const;

  std::uint64_t file_size(const std::string& path) const;

  const std::vector<ChunkInfo>& chunks(const std::string& path) const;

  /// Zero-copy view of one chunk's bytes.
  std::string_view chunk_data(const std::string& path, std::size_t index) const;

  /// Sum of sizes of all files under a prefix.
  std::uint64_t total_size(const std::string& prefix) const;

  // --- failure handling ----------------------------------------------------

  /// Mark a datanode dead: all its replicas vanish. Chunks whose last replica
  /// lived there become under-replicated but the data is still recoverable
  /// here only if another replica survives (as in HDFS).
  void kill_node(int node);

  /// Bring a node back empty (it rejoins with no chunks, as a fresh datanode).
  void revive_node(int node);

  /// Restore the replication factor for all under-replicated chunks from
  /// surviving replicas. Chunks that lost every replica cannot be restored;
  /// they are reported in ReReplicationReport::lost (never thrown — the
  /// caller decides whether the loss is tolerable).
  ReReplicationReport re_replicate();

  /// Number of chunks having fewer live replicas than the target factor.
  std::size_t under_replicated_chunks() const;

  bool node_alive(int node) const;

  DfsStats stats() const;

  const ClusterConfig& config() const { return config_; }

  /// Ambient telemetry for everything running against this DFS. The DFS
  /// instruments its own events (ingest, node death, re-replication) and the
  /// engine / flow executor fall back to this handle when their own configs
  /// carry none — so one call here wires a whole pipeline.
  void set_telemetry(telemetry::Telemetry t) { telemetry_ = t; }
  telemetry::Telemetry telemetry() const { return telemetry_; }

 private:
  struct File {
    std::string data;
    std::vector<ChunkInfo> chunks;
  };

  const File& file_or_die(const std::string& path) const;
  std::vector<int> place_replicas(int writer_node);

  ClusterConfig config_;
  std::map<std::string, File> files_;  // ordered: deterministic listing
  std::vector<bool> node_alive_;
  std::vector<std::uint64_t> node_bytes_;  // load-balancing hint
  Rng rng_;
  double sim_ingest_seconds_ = 0.0;
  telemetry::Telemetry telemetry_;
};

}  // namespace gepeto::mr
