// Shuffle-side data layout and k-way merge.
//
// A map task's output for one reducer partition is a SortedRun: keys and
// values held in two parallel arrays, sorted by key. The split layout is
// what makes reduce groups zero-copy — a run of equal keys owns a
// *contiguous* range of the values array, so the reducer receives a
// std::span<const V> pointing straight into the merged run, with no
// per-group scratch vector.
//
// merge_sorted_runs() merges the R runs a reducer pulls (one per surviving
// map task) with a tournament loser tree: O(N log M) comparisons for N total
// records across M runs, instead of the O(N log N) a concatenate-and-resort
// pays. The merge is stable by (run index, position within run) — ties on
// equal keys are won by the lower run index, and each run is consumed in
// order — which reproduces exactly the order of concatenating the runs in
// map-task order and stable-sorting by key. Job outputs therefore stay
// byte-identical at a fixed seed, including across retried reduce attempts,
// which re-iterate the same merged run without consuming it.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"

namespace gepeto::mr {

/// One sorted run of intermediate (key, value) records in split layout.
template <typename K, typename V>
struct SortedRun {
  std::vector<K> keys;
  std::vector<V> values;

  std::size_t size() const { return keys.size(); }
  bool empty() const { return keys.empty(); }

  void reserve(std::size_t n) {
    keys.reserve(n);
    values.reserve(n);
  }
};

namespace detail {

/// Stable-sort pairs by key: equal keys keep emission order, mirroring
/// Hadoop's sort of a spill buffer.
template <typename K, typename V>
void sort_pairs(std::vector<std::pair<K, V>>& pairs) {
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
}

/// Move a sorted pair buffer into the split run layout.
template <typename K, typename V>
SortedRun<K, V> split_pairs(std::vector<std::pair<K, V>>&& pairs) {
  SortedRun<K, V> run;
  run.reserve(pairs.size());
  for (auto& [k, v] : pairs) {
    run.keys.push_back(std::move(k));
    run.values.push_back(std::move(v));
  }
  pairs.clear();
  pairs.shrink_to_fit();
  return run;
}

/// Tournament loser tree over M run cursors. Leaves (padded to a power of
/// two with permanently-exhausted slots) are runs; each internal node
/// remembers the loser of the match played there and the winner bubbles to
/// the root. Advancing the winner replays only its root path: O(log M)
/// comparisons per record.
///
/// Generic over the cursor: a Cursor exposes key_type/value_type,
/// exhausted(), key(), value(), advance(). In-memory SortedRuns and
/// file-streamed spill runs (storage/spill.h) merge through the same tree —
/// and with the same (key, run index) tie-break, so the out-of-core external
/// merge reproduces the in-memory merge order exactly.
template <typename Cursor>
class CursorLoserTree {
 public:
  using K = typename Cursor::key_type;

  explicit CursorLoserTree(std::span<Cursor> runs) : runs_(runs) {
    GEPETO_DCHECK(!runs.empty());
    width_ = 1;
    while (width_ < runs.size()) width_ *= 2;
    tree_.assign(width_, kNone);
    // Build the full bracket bottom-up: winner[] is a scratch winner tree,
    // tree_ keeps each match's loser.
    std::vector<std::size_t> winner(2 * width_);
    for (std::size_t i = 0; i < width_; ++i)
      winner[width_ + i] = i < runs.size() ? i : kNone;
    for (std::size_t node = width_ - 1; node > 0; --node) {
      const std::size_t a = winner[2 * node], b = winner[2 * node + 1];
      winner[node] = beats(a, b) ? a : b;
      tree_[node] = beats(a, b) ? b : a;
    }
    winner_ = exhausted(winner[1]) ? kNone : winner[1];
  }

  /// Run index holding the smallest (key, run) pair, or kNone when drained.
  std::size_t top() const { return winner_; }

  /// Current key / cursor of the winning run.
  const K& key() const { return runs_[winner_].key(); }
  Cursor& run() const { return runs_[winner_]; }

  /// Consume the winner's current record and rebubble.
  void pop() {
    runs_[winner_].advance();
    std::size_t cur = winner_;
    for (std::size_t node = (width_ + winner_) / 2; node > 0; node /= 2) {
      if (beats(tree_[node], cur)) std::swap(tree_[node], cur);
    }
    winner_ = exhausted(cur) ? kNone : cur;
  }

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

 private:
  bool exhausted(std::size_t r) const {
    return r == kNone || runs_[r].exhausted();
  }

  /// True when run `a` beats run `b`: strictly smaller key, or equal keys
  /// and lower run index (the stability rule). Exhausted runs lose to every
  /// live run.
  bool beats(std::size_t a, std::size_t b) const {
    if (exhausted(b)) return true;
    if (exhausted(a)) return false;
    const K& ka = runs_[a].key();
    const K& kb = runs_[b].key();
    if (ka < kb) return true;
    if (kb < ka) return false;
    return a < b;
  }

  std::span<Cursor> runs_;
  std::size_t width_;              // leaf count, power of two
  std::vector<std::size_t> tree_;  // loser at each internal node
  std::size_t winner_;
};

/// In-memory cursor over one SortedRun with mutable value access, so
/// merge_sorted_runs can move values out of its sources.
template <typename K, typename V>
struct MoveRunCursor {
  using key_type = K;
  using value_type = V;

  SortedRun<K, V>* run = nullptr;
  std::size_t pos = 0;

  bool exhausted() const { return pos >= run->size(); }
  const K& key() const { return run->keys[pos]; }
  V& value() const { return run->values[pos]; }
  void advance() { ++pos; }
};

/// Merge M sorted runs into one, stable by (run index, in-run position).
/// Values are *moved* out of the input runs (each run feeds exactly one
/// reducer, so the map-side copy is never needed again); keys are copied so
/// comparisons against partially-moved state never happen.
template <typename K, typename V>
SortedRun<K, V> merge_sorted_runs(std::span<SortedRun<K, V>* const> runs) {
  SortedRun<K, V> out;
  std::size_t total = 0;
  for (const auto* r : runs) total += r->size();
  out.reserve(total);
  if (runs.empty()) return out;
  if (runs.size() == 1) {  // single run: the merge is a move
    out = std::move(*runs[0]);
    return out;
  }
  std::vector<MoveRunCursor<K, V>> cursors;
  cursors.reserve(runs.size());
  for (auto* r : runs) cursors.push_back({r, 0});
  CursorLoserTree<MoveRunCursor<K, V>> tree(
      std::span<MoveRunCursor<K, V>>(cursors.data(), cursors.size()));
  while (tree.top() != CursorLoserTree<MoveRunCursor<K, V>>::kNone) {
    auto& c = tree.run();
    out.keys.push_back(c.key());
    out.values.push_back(std::move(c.value()));
    tree.pop();
  }
  return out;
}

/// Stream-merge M sorted run cursors and invoke `fn(key, span_of_values)`
/// once per maximal run of equal keys — the out-of-core counterpart of
/// merging into one SortedRun and walking it with for_each_group, producing
/// the identical group sequence (same tree, same tie-break). Only one
/// group's values are resident at a time (a group must fit in memory; the
/// runs need not). Values are *copied* out of the cursors so the underlying
/// runs survive for retried attempts. Returns the total records merged.
template <typename Cursor, typename Fn>
std::uint64_t merge_cursor_groups(std::span<Cursor> runs, Fn&& fn) {
  using K = typename Cursor::key_type;
  using V = typename Cursor::value_type;
  std::uint64_t total = 0;
  if (runs.empty()) return total;
  CursorLoserTree<Cursor> tree(runs);
  bool have_group = false;
  K group_key{};
  std::vector<V> group_values;
  while (tree.top() != CursorLoserTree<Cursor>::kNone) {
    Cursor& c = tree.run();
    if (!have_group) {
      group_key = c.key();
      have_group = true;
    } else if (group_key < c.key()) {  // merged keys are non-decreasing
      fn(std::as_const(group_key),
         std::span<const V>(group_values.data(), group_values.size()));
      group_key = c.key();
      group_values.clear();
    }
    group_values.push_back(c.value());
    ++total;
    tree.pop();
  }
  if (have_group)
    fn(std::as_const(group_key),
       std::span<const V>(group_values.data(), group_values.size()));
  return total;
}

/// Invoke `fn(key, span_of_values)` for each run of equal keys. The span
/// aliases the run's contiguous value storage — zero copies — and the run is
/// not consumed, so a retried reduce attempt re-iterates the same data.
template <typename K, typename V, typename Fn>
void for_each_group(const SortedRun<K, V>& run, Fn&& fn) {
  std::size_t i = 0;
  while (i < run.size()) {
    std::size_t j = i + 1;
    while (j < run.size() && !(run.keys[i] < run.keys[j])) ++j;
    fn(run.keys[i], std::span<const V>(run.values.data() + i, j - i));
    i = j;
  }
}

}  // namespace detail
}  // namespace gepeto::mr
