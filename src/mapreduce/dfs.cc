#include "mapreduce/dfs.h"

#include <algorithm>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace gepeto::mr {

Dfs::Dfs(const ClusterConfig& config)
    : config_(config),
      node_alive_(static_cast<std::size_t>(config.num_worker_nodes), true),
      node_bytes_(static_cast<std::size_t>(config.num_worker_nodes), 0),
      rng_(config.seed ^ 0xD15F'5EED) {
  config_.validate();
}

std::vector<int> Dfs::place_replicas(int writer_node) {
  // HDFS rack-aware policy: replica 1 on the writer node (or a random live
  // node for external clients), replica 2 on another node in the same rack,
  // replica 3 on a node in a different rack. Extra replicas go to the least
  // loaded remaining live nodes.
  std::vector<int> live;
  for (int n = 0; n < config_.num_worker_nodes; ++n)
    if (node_alive_[static_cast<std::size_t>(n)]) live.push_back(n);
  GEPETO_CHECK_MSG(!live.empty(), "no live datanodes");

  const int want = std::min<int>(config_.replication,
                                 static_cast<int>(live.size()));
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(want));

  int first = writer_node;
  if (first < 0 || first >= config_.num_worker_nodes ||
      !node_alive_[static_cast<std::size_t>(first)]) {
    first = live[rng_.uniform_u64(live.size())];
  }
  out.push_back(first);

  auto taken = [&](int n) {
    return std::find(out.begin(), out.end(), n) != out.end();
  };
  auto pick = [&](auto&& pred) -> std::optional<int> {
    // Least-loaded live node satisfying pred, random tie-break via scan order.
    std::optional<int> best;
    for (int n : live) {
      if (taken(n) || !pred(n)) continue;
      if (!best || node_bytes_[static_cast<std::size_t>(n)] <
                       node_bytes_[static_cast<std::size_t>(*best)]) {
        best = n;
      }
    }
    return best;
  };

  if (static_cast<int>(out.size()) < want) {
    const int rack = config_.rack_of(first);
    auto same_rack = pick([&](int n) { return config_.rack_of(n) == rack; });
    if (!same_rack) same_rack = pick([](int) { return true; });
    if (same_rack) out.push_back(*same_rack);
  }
  if (static_cast<int>(out.size()) < want) {
    const int rack = config_.rack_of(first);
    auto other_rack = pick([&](int n) { return config_.rack_of(n) != rack; });
    if (!other_rack) other_rack = pick([](int) { return true; });
    if (other_rack) out.push_back(*other_rack);
  }
  while (static_cast<int>(out.size()) < want) {
    auto any = pick([](int) { return true; });
    if (!any) break;
    out.push_back(*any);
  }
  return out;
}

void Dfs::put(const std::string& path, std::string contents, int writer_node) {
  remove(path);  // release the old file's replicas before placing new ones
  File file;
  file.data = std::move(contents);
  const std::uint64_t size = file.data.size();
  const std::uint64_t chunk = config_.chunk_size;

  for (std::uint64_t off = 0; off < size || (size == 0 && off == 0);
       off += chunk) {
    ChunkInfo ci;
    ci.offset = off;
    ci.size = std::min<std::uint64_t>(chunk, size - off);
    ci.replicas = place_replicas(writer_node);
    for (int n : ci.replicas)
      node_bytes_[static_cast<std::size_t>(n)] += ci.size;
    file.chunks.push_back(std::move(ci));
    if (size == 0) break;  // empty file still gets one (empty) chunk entry
  }

  // Modeled ingest time: the HDFS write pipeline streams each chunk through
  // its replica chain; the client-side bottleneck is one disk write per byte
  // plus the pipeline network hop, with a per-chunk setup cost.
  const double bytes = static_cast<double>(size);
  sim_ingest_seconds_ += bytes / config_.disk_bandwidth_Bps +
                         bytes / config_.intra_rack_Bps +
                         0.05 * static_cast<double>(file.chunks.size());

  if (telemetry_.metrics != nullptr) {
    telemetry_.metrics
        ->counter("dfs_ingest_bytes_total", "bytes written into the DFS")
        .add(static_cast<std::int64_t>(size));
    telemetry_.metrics
        ->counter("dfs_files_written_total", "files written into the DFS")
        .inc();
  }

  files_.emplace(path, std::move(file));
}

bool Dfs::exists(const std::string& path) const {
  return files_.count(path) != 0;
}

void Dfs::remove(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return;
  for (const auto& ci : it->second.chunks)
    for (int n : ci.replicas)
      node_bytes_[static_cast<std::size_t>(n)] -= ci.size;
  files_.erase(it);
}

void Dfs::remove_prefix(const std::string& prefix) {
  for (const auto& p : list(prefix)) remove(p);
}

std::vector<std::string> Dfs::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

const Dfs::File& Dfs::file_or_die(const std::string& path) const {
  auto it = files_.find(path);
  GEPETO_CHECK_MSG(it != files_.end(), "no such DFS file: " << path);
  return it->second;
}

std::string_view Dfs::read(const std::string& path) const {
  return file_or_die(path).data;
}

std::uint64_t Dfs::file_size(const std::string& path) const {
  return file_or_die(path).data.size();
}

const std::vector<ChunkInfo>& Dfs::chunks(const std::string& path) const {
  return file_or_die(path).chunks;
}

std::string_view Dfs::chunk_data(const std::string& path,
                                 std::size_t index) const {
  const File& f = file_or_die(path);
  GEPETO_CHECK(index < f.chunks.size());
  const ChunkInfo& ci = f.chunks[index];
  return std::string_view(f.data).substr(ci.offset, ci.size);
}

std::uint64_t Dfs::total_size(const std::string& prefix) const {
  std::uint64_t total = 0;
  for (const auto& p : list(prefix)) total += file_size(p);
  return total;
}

void Dfs::kill_node(int node) {
  GEPETO_CHECK(node >= 0 && node < config_.num_worker_nodes);
  if (!node_alive_[static_cast<std::size_t>(node)]) return;
  if (telemetry_.trace != nullptr) {
    telemetry_.trace->add_sim_instant("datanode killed", "dfs",
                                      telemetry_.trace->sim_cursor(), node);
  }
  if (telemetry_.metrics != nullptr) {
    telemetry_.metrics
        ->counter("dfs_nodes_killed_total", "datanodes marked dead")
        .inc();
  }
  node_alive_[static_cast<std::size_t>(node)] = false;
  node_bytes_[static_cast<std::size_t>(node)] = 0;
  for (auto& [path, file] : files_) {
    for (auto& ci : file.chunks) {
      std::erase(ci.replicas, node);
    }
  }
}

void Dfs::revive_node(int node) {
  GEPETO_CHECK(node >= 0 && node < config_.num_worker_nodes);
  node_alive_[static_cast<std::size_t>(node)] = true;
}

ReReplicationReport Dfs::re_replicate() {
  ReReplicationReport report;
  for (auto& [path, file] : files_) {
    for (std::size_t c = 0; c < file.chunks.size(); ++c) {
      auto& ci = file.chunks[c];
      if (ci.replicas.empty()) {
        // Every replica died: the chunk is gone. Report it instead of
        // throwing — a map-only job with max_failed_task_fraction can
        // tolerate losing some input splits.
        report.lost.push_back({path, c, ci.size});
        continue;
      }
      while (static_cast<int>(ci.replicas.size()) < config_.replication) {
        // Place a new replica on the least-loaded live node not yet holding
        // one (HDFS's NameNode does the same from its replication queue).
        std::optional<int> best;
        for (int n = 0; n < config_.num_worker_nodes; ++n) {
          if (!node_alive_[static_cast<std::size_t>(n)]) continue;
          if (std::find(ci.replicas.begin(), ci.replicas.end(), n) !=
              ci.replicas.end())
            continue;
          if (!best || node_bytes_[static_cast<std::size_t>(n)] <
                           node_bytes_[static_cast<std::size_t>(*best)]) {
            best = n;
          }
        }
        if (!best) break;  // not enough live nodes to reach the target factor
        ci.replicas.push_back(*best);
        node_bytes_[static_cast<std::size_t>(*best)] += ci.size;
        ++report.created;
        report.moved_bytes += ci.size;
      }
    }
  }
  // Each copy reads a surviving replica's disk and crosses the rack fabric.
  const double bytes = static_cast<double>(report.moved_bytes);
  report.sim_seconds =
      bytes / config_.disk_bandwidth_Bps + bytes / config_.intra_rack_Bps;
  if (telemetry_.metrics != nullptr) {
    auto& m = *telemetry_.metrics;
    m.counter("dfs_rereplication_sweeps_total", "re-replication sweeps run")
        .inc();
    m.counter("dfs_rereplicated_replicas_total", "replicas restored")
        .add(static_cast<std::int64_t>(report.created));
    m.counter("dfs_rereplicated_bytes_total",
              "bytes copied restoring replication")
        .add(static_cast<std::int64_t>(report.moved_bytes));
    m.counter("dfs_lost_chunks_total", "chunks that lost every replica")
        .add(static_cast<std::int64_t>(report.lost.size()));
  }
  if (telemetry_.trace != nullptr && report.created > 0) {
    telemetry_.trace->add_sim_instant(
        "re-replication sweep", "dfs", telemetry_.trace->sim_cursor(), -1, 0,
        {{"replicas_restored", std::to_string(report.created)},
         {"moved_bytes", std::to_string(report.moved_bytes)},
         {"lost_chunks", std::to_string(report.lost.size())}});
  }
  return report;
}

std::size_t Dfs::under_replicated_chunks() const {
  int live = 0;
  for (bool alive : node_alive_)
    if (alive) ++live;
  const int target = std::min(config_.replication, live);
  std::size_t n = 0;
  for (const auto& [path, file] : files_)
    for (const auto& ci : file.chunks)
      if (static_cast<int>(ci.replicas.size()) < target) ++n;
  return n;
}

bool Dfs::node_alive(int node) const {
  GEPETO_CHECK(node >= 0 && node < config_.num_worker_nodes);
  return node_alive_[static_cast<std::size_t>(node)];
}

DfsStats Dfs::stats() const {
  DfsStats s;
  s.files = files_.size();
  s.sim_ingest_seconds = sim_ingest_seconds_;
  for (const auto& [path, file] : files_) {
    s.logical_bytes += file.data.size();
    s.chunks += file.chunks.size();
    for (const auto& ci : file.chunks)
      s.stored_bytes += ci.size * ci.replicas.size();
  }
  return s;
}

}  // namespace gepeto::mr
