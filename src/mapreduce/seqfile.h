// A SequenceFile-like binary record format with sync markers.
//
// The paper's related-work section notes that Mahout's clustering jobs
// require the input "converted to a specific Hadoop file format, the
// SequenceFile format". This module implements the analogous format for
// this engine: length-prefixed binary records with periodic 16-byte *sync
// markers*, which is what makes a binary file splittable — a reader handed
// an arbitrary byte range scans to the next marker and starts there, and
// every record is consumed by exactly one split (property-tested, like the
// text reader's rule).
//
// Layout:
//   header  := "SEQ1" + sync(16 bytes)
//   entry   := u32 length (LE) + payload        (length != kSyncEscape)
//            | u32 kSyncEscape + sync(16 bytes)
// A marker is emitted roughly every `sync_interval` payload bytes.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace gepeto::mr {

inline constexpr std::uint32_t kSeqSyncEscape = 0xFFFFFFFFu;
inline constexpr std::size_t kSeqSyncSize = 16;

/// Appends records to an in-memory file (which then goes into the DFS).
class SeqFileWriter {
 public:
  /// `sync_seed` determines the file's sync marker (any value; files with
  /// different seeds simply have different markers).
  explicit SeqFileWriter(std::uint64_t sync_seed = 0x5EC0'11EC,
                         std::size_t sync_interval = 2000);

  void append(std::string_view record);

  /// The finished file contents (move out when done).
  std::string& contents() { return out_; }
  const std::string& contents() const { return out_; }

  std::size_t records_written() const { return records_; }

 private:
  void write_sync();

  std::array<unsigned char, kSeqSyncSize> sync_{};
  std::string out_;
  std::size_t sync_interval_;
  std::size_t bytes_since_sync_ = 0;
  std::size_t records_ = 0;
};

/// Reads the records of one split of a seq file, Hadoop-style: a split owns
/// every record group whose sync marker *ends* inside (start, start+len]
/// (the first split also owns the group right after the header).
class SeqFileReader {
 public:
  SeqFileReader(std::string_view file, std::uint64_t split_start,
                std::uint64_t split_len);

  /// Advance to the next record; false at end of split.
  bool next();

  std::string_view record() const { return record_; }

 private:
  bool at_sync() const;

  std::string_view file_;
  std::array<unsigned char, kSeqSyncSize> sync_{};
  std::uint64_t pos_ = 0;
  std::uint64_t split_end_ = 0;  ///< groups starting after this are not ours
  std::string_view record_;
  bool done_ = false;
};

}  // namespace gepeto::mr
