// The virtual-time jobtracker.
//
// Tasks are executed for real on host threads (engine.h); this scheduler then
// replays them against the modeled cluster in *virtual time*: per-node task
// slots, Hadoop-heartbeat-style assignment with locality preference
// (node-local > rack-local > remote, Section III of the paper), modeled disk
// and network costs, and re-execution of failure-injected attempts. The
// result is a deterministic makespan + locality profile for the configured
// cluster, independent of how many host cores actually ran the tasks.
#pragma once

#include <cstdint>
#include <vector>

#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

namespace gepeto::mr {

struct MapTaskCost {
  std::uint64_t input_bytes = 0;     ///< chunk bytes read
  std::uint64_t output_bytes = 0;    ///< spilled locally after combine
  double cpu_seconds = 0.0;          ///< measured host CPU time
  std::vector<int> replica_nodes;    ///< where the chunk's replicas live
  int failed_attempts = 0;           ///< injected failures before success
};

struct ReduceTaskCost {
  /// Bytes pulled from each map task, paired with the node that ran that map
  /// task in the map-phase schedule.
  std::vector<std::pair<int, std::uint64_t>> shuffle_from;
  double cpu_seconds = 0.0;
  std::uint64_t output_bytes = 0;
  int failed_attempts = 0;
};

struct MapSchedule {
  double makespan = 0.0;             ///< virtual seconds for the map phase
  std::vector<int> assigned_node;    ///< node of each task's successful attempt
  int data_local = 0;
  int rack_local = 0;
  int remote = 0;
  /// Backup attempts launched when speculative execution is enabled.
  int speculative_copies = 0;
  /// Tasks whose backup copy beat the original attempt.
  int speculative_wins = 0;
  /// Nodes excluded mid-phase after accumulating failed attempts
  /// (ClusterConfig::blacklist_after_failures).
  int blacklisted_nodes = 0;
};

struct ReduceSchedule {
  double makespan = 0.0;
  std::vector<int> assigned_node;
  int blacklisted_nodes = 0;
};

/// Schedule the map phase on the modeled cluster. `excluded_nodes` (e.g.
/// datanodes killed by the chaos harness) get no task slots; failed attempts
/// are attributed to the node they ran on and can blacklist it mid-phase.
MapSchedule schedule_map_phase(const ClusterConfig& config,
                               const std::vector<MapTaskCost>& tasks,
                               const std::vector<int>& excluded_nodes = {});

/// Schedule the reduce phase; starts (virtually) after the map barrier, as in
/// the paper ("the reducers have to wait for the completion of the map
/// phase").
ReduceSchedule schedule_reduce_phase(const ClusterConfig& config,
                                     const std::vector<ReduceTaskCost>& tasks,
                                     const std::vector<int>& excluded_nodes = {});

/// Modeled seconds for one map attempt running on `node`.
double map_attempt_seconds(const ClusterConfig& config, const MapTaskCost& t,
                           int node);

/// Modeled seconds for one reduce attempt running on `node`.
double reduce_attempt_seconds(const ClusterConfig& config,
                              const ReduceTaskCost& t, int node);

/// Locality of running a task for data with the given replicas on `node`.
Locality locality_of(const ClusterConfig& config,
                     const std::vector<int>& replicas, int node);

}  // namespace gepeto::mr
