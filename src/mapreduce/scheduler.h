// The virtual-time jobtracker.
//
// Tasks are executed for real on host threads (engine.h); this scheduler then
// replays them against the modeled cluster in *virtual time*: per-node task
// slots, Hadoop-heartbeat-style assignment with locality preference
// (node-local > rack-local > remote, Section III of the paper), modeled disk
// and network costs, and re-execution of failure-injected attempts. The
// result is a deterministic makespan + locality profile for the configured
// cluster, independent of how many host cores actually ran the tasks.
#pragma once

#include <cstdint>
#include <vector>

#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

namespace gepeto::mr {

struct MapTaskCost {
  std::uint64_t input_bytes = 0;     ///< chunk bytes read
  std::uint64_t output_bytes = 0;    ///< spilled locally after combine
  double cpu_seconds = 0.0;          ///< measured host CPU time
  std::vector<int> replica_nodes;    ///< where the chunk's replicas live
  int failed_attempts = 0;           ///< injected failures before success
};

struct ReduceTaskCost {
  /// Bytes pulled from each map task, paired with the node that ran that map
  /// task in the map-phase schedule.
  std::vector<std::pair<int, std::uint64_t>> shuffle_from;
  double cpu_seconds = 0.0;
  std::uint64_t output_bytes = 0;
  int failed_attempts = 0;
};

/// One occupancy interval of a (node, slot) pair on the virtual timeline:
/// a successful attempt, a crashed attempt (occupying the slot for part of
/// its modeled runtime), or a speculative backup copy. Schedules record
/// every slice so telemetry can replay the phase as a Gantt chart; the cost
/// of recording is a few small structs per task, paid unconditionally.
struct TaskSlice {
  enum class Kind { kAttempt, kFailedAttempt, kSpeculative };
  int task = 0;     ///< index into the phase's task vector
  int attempt = 0;  ///< ordinal of this attempt within the task
  int node = 0;
  int slot = 0;
  double start = 0.0;   ///< virtual seconds from phase start
  double finish = 0.0;
  Kind kind = Kind::kAttempt;
  Locality locality = Locality::kDataLocal;
  bool won = false;  ///< speculative copy that beat the original attempt
};

/// A timestamped scheduler decision (currently: node blacklisting).
struct SchedulerEvent {
  enum class Kind { kBlacklist };
  Kind kind = Kind::kBlacklist;
  int node = 0;
  double when = 0.0;  ///< virtual seconds from phase start
};

struct MapSchedule {
  double makespan = 0.0;             ///< virtual seconds for the map phase
  std::vector<int> assigned_node;    ///< node of each task's successful attempt
  int data_local = 0;
  int rack_local = 0;
  int remote = 0;
  /// Backup attempts launched when speculative execution is enabled.
  int speculative_copies = 0;
  /// Tasks whose backup copy beat the original attempt.
  int speculative_wins = 0;
  /// Nodes excluded mid-phase after accumulating failed attempts
  /// (ClusterConfig::blacklist_after_failures).
  int blacklisted_nodes = 0;
  /// Every slot occupancy of the phase, in assignment order.
  std::vector<TaskSlice> slices;
  /// Timestamped scheduler decisions (blacklisting).
  std::vector<SchedulerEvent> events;
};

struct ReduceSchedule {
  double makespan = 0.0;
  std::vector<int> assigned_node;
  int blacklisted_nodes = 0;
  std::vector<TaskSlice> slices;
  std::vector<SchedulerEvent> events;
};

/// Schedule the map phase on the modeled cluster. `excluded_nodes` (e.g.
/// datanodes killed by the chaos harness) get no task slots; failed attempts
/// are attributed to the node they ran on and can blacklist it mid-phase.
MapSchedule schedule_map_phase(const ClusterConfig& config,
                               const std::vector<MapTaskCost>& tasks,
                               const std::vector<int>& excluded_nodes = {});

/// Schedule the reduce phase; starts (virtually) after the map barrier, as in
/// the paper ("the reducers have to wait for the completion of the map
/// phase").
ReduceSchedule schedule_reduce_phase(const ClusterConfig& config,
                                     const std::vector<ReduceTaskCost>& tasks,
                                     const std::vector<int>& excluded_nodes = {});

/// Component breakdown of one map attempt, each already scaled by the
/// node's speed factor, so startup + read + cpu + spill ==
/// map_attempt_seconds(). Telemetry uses it to emit read/map/spill child
/// spans inside a task span.
struct MapAttemptBreakdown {
  double startup = 0.0;
  double read = 0.0;  ///< chunk read: replica disk + network by locality
  double cpu = 0.0;
  double spill = 0.0;  ///< map output spilled to local disk
  double total() const { return startup + read + cpu + spill; }
};

struct ReduceAttemptBreakdown {
  double startup = 0.0;
  double shuffle = 0.0;  ///< fetch map spills: disk + network per source
  double cpu = 0.0;
  double write = 0.0;  ///< output through the DFS replica pipeline
  double total() const { return startup + shuffle + cpu + write; }
};

MapAttemptBreakdown map_attempt_breakdown(const ClusterConfig& config,
                                          const MapTaskCost& t, int node);

ReduceAttemptBreakdown reduce_attempt_breakdown(const ClusterConfig& config,
                                                const ReduceTaskCost& t,
                                                int node);

/// Modeled seconds for one map attempt running on `node`.
double map_attempt_seconds(const ClusterConfig& config, const MapTaskCost& t,
                           int node);

/// Modeled seconds for one reduce attempt running on `node`.
double reduce_attempt_seconds(const ClusterConfig& config,
                              const ReduceTaskCost& t, int node);

/// Locality of running a task for data with the given replicas on `node`.
Locality locality_of(const ClusterConfig& config,
                     const std::vector<int>& replicas, int node);

}  // namespace gepeto::mr
