// Lightweight contract-checking macros (Core Guidelines I.6/I.8 style).
//
// GEPETO_CHECK is always on (cheap invariants on hot-but-not-inner paths);
// GEPETO_DCHECK compiles away in NDEBUG builds (inner-loop assertions).
#pragma once

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gepeto {

/// Thrown when a GEPETO_CHECK fires. Carries the failing expression and
/// the file:line where the invariant was violated.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace gepeto

#define GEPETO_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::gepeto::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define GEPETO_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream gepeto_check_os_;                              \
      gepeto_check_os_ << msg;                                          \
      ::gepeto::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                     gepeto_check_os_.str());           \
    }                                                                   \
  } while (0)

/// Unconditional invariant violation ("can't happen" branches); reads better
/// than GEPETO_CHECK_MSG(false, ...) and keeps [[noreturn]] reachable to the
/// compiler through check_failed.
#define GEPETO_FAIL(msg)                                                \
  do {                                                                  \
    std::ostringstream gepeto_check_os_;                                \
    gepeto_check_os_ << msg;                                            \
    ::gepeto::detail::check_failed("unreachable", __FILE__, __LINE__,   \
                                   gepeto_check_os_.str());             \
  } while (0)

#ifdef NDEBUG
#define GEPETO_DCHECK(expr) ((void)0)
#else
#define GEPETO_DCHECK(expr) GEPETO_CHECK(expr)
#endif
