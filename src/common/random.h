// Deterministic random number generation.
//
// All randomness in the library flows from explicitly seeded generators so
// that every experiment is reproducible bit-for-bit. We use SplitMix64 for
// seeding and Xoshiro256** as the workhorse generator (fast, high quality,
// and — unlike std::mt19937 + std::distributions — identical output across
// standard library implementations).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

#include "common/check.h"

namespace gepeto {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the library-wide PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9eeb'c0de'5eed'1234ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Unbiased via rejection.
  std::uint64_t uniform_u64(std::uint64_t n) {
    GEPETO_DCHECK(n > 0);
    const std::uint64_t threshold = (~n + 1) % n;  // = 2^64 mod n
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    GEPETO_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform_u64(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Box–Muller (deterministic; no cached spare to keep
  /// state trivially copyable and reseedable).
  double gaussian() {
    // Avoid log(0): uniform() is in [0,1), so flip to (0,1].
    const double u1 = 1.0 - uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  /// Exponential with the given mean.
  double exponential(double mean) {
    const double u = 1.0 - uniform();
    return -mean * std::log(u);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Pick an index according to unnormalised non-negative weights.
  std::size_t weighted_pick(const double* weights, std::size_t n) {
    GEPETO_DCHECK(n > 0);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += weights[i];
    GEPETO_DCHECK(total > 0.0);
    double x = uniform() * total;
    for (std::size_t i = 0; i < n; ++i) {
      x -= weights[i];
      if (x < 0.0) return i;
    }
    return n - 1;  // numeric edge: fell off the end
  }

  /// Derive an independent child generator (e.g. one per user / per task).
  Rng fork(std::uint64_t stream) {
    SplitMix64 sm(state_[0] ^ (stream * 0x9e3779b97f4a7c15ULL));
    Rng child(sm.next());
    return child;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace gepeto
