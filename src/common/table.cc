#include "common/table.h"

#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace gepeto {

void Table::header(std::vector<std::string> cols) {
  GEPETO_CHECK(rows_.empty());
  header_ = std::move(cols);
}

void Table::row(std::vector<std::string> cols) {
  GEPETO_CHECK_MSG(cols.size() == header_.size(),
                   "row width " << cols.size() << " != header width "
                                << header_.size());
  rows_.push_back(std::move(cols));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << r[c];
      if (c + 1 < r.size()) os << " | ";
    }
    os << '\n';
  };
  print_row(header_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c], '-');
    if (c + 1 < widths.size()) os << "-+-";
  }
  os << '\n';
  for (const auto& r : rows_) print_row(r);
  os << '\n';
}

std::string format_bytes(std::uint64_t bytes) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  if (bytes >= (1ULL << 30))
    os << static_cast<double>(bytes) / double(1ULL << 30) << " GiB";
  else if (bytes >= (1ULL << 20))
    os << static_cast<double>(bytes) / double(1ULL << 20) << " MiB";
  else if (bytes >= (1ULL << 10))
    os << static_cast<double>(bytes) / double(1ULL << 10) << " KiB";
  else
    os << bytes << " B";
  return os.str();
}

std::string format_seconds(double s) {
  std::ostringstream os;
  os << std::fixed;
  if (s < 1e-3)
    os << std::setprecision(1) << s * 1e6 << " us";
  else if (s < 1.0)
    os << std::setprecision(2) << s * 1e3 << " ms";
  else if (s < 120.0)
    os << std::setprecision(2) << s << " s";
  else
    os << static_cast<int>(s) / 60 << " min " << std::setprecision(0)
       << static_cast<int>(s) % 60 << " s";
  return os.str();
}

std::string format_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int c = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (c != 0 && c % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++c;
  }
  return {out.rbegin(), out.rend()};
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace gepeto
