// A fixed-size worker pool used by the MapReduce engine to execute task
// slots. Deliberately simple: FIFO queue, futures for results, clean
// shutdown in the destructor (RAII, no detached threads).
//
// shared_thread_pool() hands out a process-shared instance so iterative
// drivers (dozens of jobs, two phases each) stop paying thread creation and
// teardown per phase.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"

namespace gepeto {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads) {
    GEPETO_CHECK(num_threads > 0);
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t size() const { return workers_.size(); }

  /// Submit a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lk(mu_);
      GEPETO_CHECK_MSG(!stopping_, "submit() after shutdown");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// Process-shared pool of exactly `num_threads` workers, reused across jobs
/// and phases. The returned shared_ptr keeps the pool alive for as long as
/// the caller holds it; a request for a different size builds a fresh pool
/// (callers still holding the old one drain it safely before it is joined).
inline std::shared_ptr<ThreadPool> shared_thread_pool(std::size_t num_threads) {
  static std::mutex mu;
  static std::shared_ptr<ThreadPool> cached;
  std::lock_guard<std::mutex> lk(mu);
  if (cached == nullptr || cached->size() != num_threads)
    cached = std::make_shared<ThreadPool>(num_threads);
  return cached;
}

}  // namespace gepeto
