// Minimal thread-safe leveled logging. Off by default at DEBUG; the level is
// controlled programmatically or via the GEPETO_LOG environment variable
// (error|warn|info|debug).
#pragma once

#include <sstream>
#include <string>

namespace gepeto {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

namespace logging {

/// Current global level (default: from $GEPETO_LOG, else warn).
LogLevel level();
void set_level(LogLevel lvl);

/// Emit one line (thread safe). Used by the GEPETO_LOG() macro below.
void emit(LogLevel lvl, const std::string& message);

}  // namespace logging
}  // namespace gepeto

#define GEPETO_LOG(lvl, expr)                                      \
  do {                                                             \
    if (static_cast<int>(::gepeto::LogLevel::lvl) <=               \
        static_cast<int>(::gepeto::logging::level())) {            \
      std::ostringstream gepeto_log_os_;                           \
      gepeto_log_os_ << expr;                                      \
      ::gepeto::logging::emit(::gepeto::LogLevel::lvl,             \
                              gepeto_log_os_.str());               \
    }                                                              \
  } while (0)
