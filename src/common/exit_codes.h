// Shared process exit codes for the command-line tools. Scripts (and the
// exit-code tests) rely on parse failures and verification mismatches being
// distinguishable, so keep these stable.
#pragma once

namespace gepeto::tools {

inline constexpr int kOk = 0;
/// Unclassified runtime failure (I/O error, internal check, bad data that
/// is neither a parse nor a verification problem).
inline constexpr int kError = 1;
/// Bad command line: unknown command/flag, missing argument.
inline constexpr int kUsage = 2;
/// Input could not be parsed/decoded (malformed dataset line, corrupt
/// columnar/seqfile block, unparsable coordinate argument).
inline constexpr int kParseError = 3;
/// Data parsed fine but failed verification (round-trip mismatch,
/// --verify/--expect check failed).
inline constexpr int kVerifyMismatch = 4;

}  // namespace gepeto::tools
