// Console table printer used by the benchmark harness to print paper-style
// tables (Table I, III, IV, ...) with aligned columns.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gepeto {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Set the header row. Must be called before adding rows.
  void header(std::vector<std::string> cols);

  /// Append a data row; must match the header width.
  void row(std::vector<std::string> cols);

  /// Render with ASCII rules, e.g.
  ///   == title ==
  ///   col-a | col-b
  ///   ------+------
  ///   1     | 2
  void print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by benches.
std::string format_bytes(std::uint64_t bytes);
std::string format_seconds(double s);
std::string format_count(std::uint64_t n);  // thousands separators
std::string format_double(double v, int precision);

}  // namespace gepeto
