// Wall-clock and CPU-clock stopwatches used for real-time measurements.
#pragma once

#include <chrono>
#include <ctime>

namespace gepeto {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (used to calibrate the simulated cluster
/// clock from actually executed task work).
class CpuStopwatch {
 public:
  CpuStopwatch() : start_(now()) {}

  void reset() { start_ = now(); }

  double seconds() const { return now() - start_; }

 private:
  static double now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
  }

  double start_;
};

}  // namespace gepeto
