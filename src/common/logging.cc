#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace gepeto {
namespace logging {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("GEPETO_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

std::atomic<int> g_level{static_cast<int>(initial_level())};
std::mutex g_emit_mu;

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_level(LogLevel lvl) { g_level.store(static_cast<int>(lvl), std::memory_order_relaxed); }

void emit(LogLevel lvl, const std::string& message) {
  std::lock_guard<std::mutex> lk(g_emit_mu);
  std::cerr << "[gepeto " << level_name(lvl) << "] " << message << '\n';
}

}  // namespace logging
}  // namespace gepeto
