#include "telemetry/metrics.h"

#include <algorithm>
#include <cctype>

#include "common/check.h"
#include "telemetry/json.h"

namespace gepeto::telemetry {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  GEPETO_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bound");
  GEPETO_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                   "histogram bounds must be sorted ascending");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())]++;
  count_++;
  sum_ += v;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

double Histogram::quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  q = std::max(0.0, std::min(1.0, q));
  const double target = q * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double lo_cum = static_cast<double>(cum);
    cum += counts_[i];
    if (static_cast<double>(cum) < target) continue;
    if (i == bounds_.size()) return bounds_.back();  // overflow bucket
    const double lo = i == 0 ? std::min(0.0, bounds_[0]) : bounds_[i - 1];
    const double hi = bounds_[i];
    const double frac =
        (target - lo_cum) / static_cast<double>(counts_[i]);
    return lo + (hi - lo) * std::max(0.0, std::min(1.0, frac));
  }
  return bounds_.back();
}

std::vector<double> default_time_buckets() {
  return {0.001, 0.01, 0.1, 0.5, 1, 5, 10, 30, 60, 120, 300, 600, 1800, 3600};
}

std::vector<double> default_latency_buckets() {
  // 1-2-5 ladder from 1 us to 1 s: serving queries live in the microsecond
  // range, far below the coarsest default_time_buckets() bucket.
  return {1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4,
          5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 5e-2, 0.25, 1.0};
}

std::vector<double> default_byte_buckets() {
  std::vector<double> b;
  for (double v = 1024.0; v <= 16.0 * 1024 * 1024 * 1024; v *= 4.0) {
    b.push_back(v);
  }
  return b;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.help.empty()) e.help = help;
  if (!e.counter) {
    GEPETO_CHECK_MSG(!e.gauge && !e.histogram,
                     "metric registered with a different type");
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.help.empty()) e.help = help;
  if (!e.gauge) {
    GEPETO_CHECK_MSG(!e.counter && !e.histogram,
                     "metric registered with a different type");
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.help.empty()) e.help = help;
  if (!e.histogram) {
    GEPETO_CHECK_MSG(!e.counter && !e.gauge,
                     "metric registered with a different type");
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *e.histogram;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.counter.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.gauge.get();
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.histogram.get();
}

namespace {

std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, e] : entries_) {
    if (e.counter) w.key(name).value(e.counter->value());
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, e] : entries_) {
    if (e.gauge) w.key(name).value(e.gauge->value());
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, e] : entries_) {
    if (!e.histogram) continue;
    const Histogram& h = *e.histogram;
    const auto counts = h.bucket_counts();
    const auto& bounds = h.bounds();
    w.key(name).begin_object();
    w.key("count").value(static_cast<std::uint64_t>(h.count()));
    w.key("sum").value(h.sum());
    w.key("p50").value(h.quantile(0.5));
    w.key("p95").value(h.quantile(0.95));
    w.key("p99").value(h.quantile(0.99));
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      w.begin_object();
      if (i < bounds.size()) {
        w.key("le").value(bounds[i]);
      } else {
        w.key("le").value("+Inf");
      }
      w.key("count").value(counts[i]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, e] : entries_) {
    const std::string pname = prom_name(name);
    if (!e.help.empty()) out += "# HELP " + pname + " " + e.help + "\n";
    if (e.counter) {
      out += "# TYPE " + pname + " counter\n";
      out += pname + " " + json_number(e.counter->value()) + "\n";
    } else if (e.gauge) {
      out += "# TYPE " + pname + " gauge\n";
      out += pname + " " + json_number(e.gauge->value()) + "\n";
    } else if (e.histogram) {
      const Histogram& h = *e.histogram;
      out += "# TYPE " + pname + " histogram\n";
      const auto counts = h.bucket_counts();
      const auto& bounds = h.bounds();
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < bounds.size(); ++i) {
        cum += counts[i];
        out += pname + "_bucket{le=\"" + json_number(bounds[i]) + "\"} " +
               json_number(cum) + "\n";
      }
      cum += counts.back();
      out += pname + "_bucket{le=\"+Inf\"} " + json_number(cum) + "\n";
      out += pname + "_sum " + json_number(h.sum()) + "\n";
      out += pname + "_count " +
             json_number(static_cast<std::uint64_t>(h.count())) + "\n";
    }
  }
  return out;
}

}  // namespace gepeto::telemetry
