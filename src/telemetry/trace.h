// TraceRecorder: nested spans on two timelines.
//
// * The wall timeline records real host time (steady_clock relative to the
//   recorder's construction). Spans are opened/closed with RAII WallScope
//   handles and nest per thread via an internal parent stack.
// * The sim timeline records intervals of the simulated cluster clock. The
//   engine and the flow executor emit these post-hoc — once a job's virtual
//   schedule is known — so spans carry explicit [start, end] seconds plus a
//   (node, slot) placement. A cursor tracks "current virtual time" so that
//   consecutive jobs (e.g. k-means iterations inside a flow node) lay out
//   sequentially, and a parent stack lets the flow executor wrap each job's
//   spans inside its node span.
//
// Export is Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing): one "process" per virtual node (pid = node + 1, pid 0
// is the driver), one "thread" per slot. The sim-timeline export contains
// only deterministic quantities, so two runs at the same seed produce
// byte-identical files.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gepeto::telemetry {

enum class Timeline { kWall, kSim };

struct SpanArg {
  std::string key;
  std::string value;
};

struct Span {
  std::string name;
  std::string category;
  Timeline timeline = Timeline::kSim;
  double start_s = 0.0;
  double end_s = 0.0;
  int node = -1;  // -1 = driver (pid 0); node n maps to pid n + 1
  int slot = 0;   // tid
  std::int64_t id = -1;
  std::int64_t parent = -1;  // -1 = root
  bool instant = false;      // zero-duration marker event
  std::vector<SpanArg> args;
};

class TraceRecorder;

/// RAII handle for a wall-timeline span. Default-constructed it is a no-op,
/// so call sites can unconditionally hold one and only arm it when a
/// recorder is attached.
class WallScope {
 public:
  WallScope() = default;
  WallScope(WallScope&& o) noexcept : rec_(o.rec_), id_(o.id_) {
    o.rec_ = nullptr;
  }
  WallScope& operator=(WallScope&& o) noexcept;
  WallScope(const WallScope&) = delete;
  WallScope& operator=(const WallScope&) = delete;
  ~WallScope();

 private:
  friend class TraceRecorder;
  WallScope(TraceRecorder* rec, std::int64_t id) : rec_(rec), id_(id) {}
  TraceRecorder* rec_ = nullptr;
  std::int64_t id_ = -1;
};

class TraceRecorder {
 public:
  static constexpr std::int64_t kNoParent = -1;
  /// Sentinel: parent the span under the top of the sim parent stack.
  static constexpr std::int64_t kCurrentParent = -2;

  TraceRecorder();

  // --- wall timeline ------------------------------------------------------
  WallScope wall_span(std::string name, std::string category = "driver",
                      std::vector<SpanArg> args = {});
  void wall_instant(std::string name, std::string category = "driver",
                    std::vector<SpanArg> args = {});

  // --- sim timeline -------------------------------------------------------
  std::int64_t add_sim_span(std::string name, std::string category,
                            double start_s, double end_s, int node = -1,
                            int slot = 0,
                            std::int64_t parent = kCurrentParent,
                            std::vector<SpanArg> args = {});
  void add_sim_instant(std::string name, std::string category, double at_s,
                       int node = -1, int slot = 0,
                       std::vector<SpanArg> args = {});

  /// Opens a sim span whose end is not yet known and pushes it onto the sim
  /// parent stack; spans added before the matching end_sim_span() default to
  /// parenting under it. Used by the flow executor for flow/node spans that
  /// enclose job emission.
  std::int64_t begin_sim_span(std::string name, std::string category,
                              double start_s, int node = -1, int slot = 0,
                              std::vector<SpanArg> args = {});
  void end_sim_span(std::int64_t id, double end_s,
                    std::vector<SpanArg> extra_args = {});

  std::int64_t current_sim_parent() const;

  /// Virtual-time cursor: where the next job's sim spans should start. The
  /// engine reads it as the job's base time and advances it by the job's
  /// sim_seconds; the flow executor positions it at each node's virtual
  /// start.
  double sim_cursor() const;
  void set_sim_cursor(double t);

  /// Latest end over all sim spans (0 when none) — the traced makespan.
  double sim_end() const;

  // --- inspection / export ------------------------------------------------
  std::vector<Span> spans() const;

  /// Chrome trace-event JSON for one timeline. The default (sim) is fully
  /// deterministic at a fixed seed.
  std::string chrome_trace_json(Timeline timeline = Timeline::kSim) const;

  void clear();

 private:
  friend class WallScope;
  void end_wall_span(std::int64_t id);
  double wall_now() const;

  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::vector<std::int64_t> sim_parents_;
  double sim_cursor_ = 0.0;
  std::map<std::thread::id, std::vector<std::int64_t>> wall_stacks_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace gepeto::telemetry
