// Shared telemetry handle threaded through JobConfig / FlowOptions / Dfs.
//
// The handle is a pair of optional sinks. Default-constructed it is null:
// every instrumentation site checks the pointers before doing any work, so a
// disabled handle costs a branch per site — no allocations, no locks, no
// formatting. This is what "zero overhead when disabled" means throughout
// the codebase.
#pragma once

namespace gepeto::telemetry {

class TraceRecorder;
class MetricsRegistry;

struct Telemetry {
  TraceRecorder* trace = nullptr;
  MetricsRegistry* metrics = nullptr;

  bool enabled() const { return trace != nullptr || metrics != nullptr; }
  explicit operator bool() const { return enabled(); }

  /// Field-wise fallback: prefer this handle's sinks, fill gaps from
  /// `other`. Lets a job-level handle override the ambient DFS-level one
  /// per sink rather than all-or-nothing.
  Telemetry or_else(const Telemetry& other) const {
    return {trace != nullptr ? trace : other.trace,
            metrics != nullptr ? metrics : other.metrics};
  }
};

}  // namespace gepeto::telemetry
