// MetricsRegistry: counters, gauges, and fixed-bucket histograms.
//
// Design goals, in order: deterministic exports (fixed bucket bounds, no
// sampling, name-sorted output), cheap updates (counters are relaxed
// atomics), and two export formats — a JSON dump for machine diffing and
// Prometheus text exposition for scraping. Quantiles are computed from the
// buckets with linear interpolation, exactly like PromQL's
// histogram_quantile(), so they are reproducible from the exported data.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gepeto::telemetry {

class Counter {
 public:
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) {
    std::lock_guard<std::mutex> lock(mu_);
    value_ = v;
  }
  double value() const {
    std::lock_guard<std::mutex> lock(mu_);
    return value_;
  }

 private:
  mutable std::mutex mu_;
  double value_ = 0.0;
};

/// Fixed-bucket histogram. Bucket i counts observations in
/// (bounds[i-1], bounds[i]]; one implicit overflow bucket counts the rest
/// (+Inf in the Prometheus exposition).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  std::uint64_t count() const;
  double sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1.
  std::vector<std::uint64_t> bucket_counts() const;

  /// Deterministic quantile estimate (q in [0, 1]) by linear interpolation
  /// within the target bucket; the first finite bucket interpolates from 0
  /// and the overflow bucket returns the highest finite bound.
  double quantile(double q) const;

 private:
  mutable std::mutex mu_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 buckets
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Bucket bounds for simulated/wall durations in seconds.
std::vector<double> default_time_buckets();
/// Bucket bounds for per-query serving latencies (1 us .. 1 s).
std::vector<double> default_latency_buckets();
/// Bucket bounds for data volumes in bytes (1 KiB .. 16 GiB).
std::vector<double> default_byte_buckets();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. Metric names use Prometheus conventions
  /// ([a-zA-Z_][a-zA-Z0-9_]*); other characters are replaced with '_' at
  /// export time.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  /// Returns nullptr when the metric does not exist.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  std::string to_json() const;
  std::string to_prometheus() const;

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // name-sorted => stable exports
};

}  // namespace gepeto::telemetry
