#include "telemetry/bench_report.h"

#include <cstdlib>
#include <fstream>

#include "telemetry/json.h"

namespace gepeto::telemetry {

namespace {

BenchReporter::Value str_value(std::string v) {
  BenchReporter::Value out;
  out.kind = BenchReporter::Value::Kind::kString;
  out.s = std::move(v);
  return out;
}

BenchReporter::Value int_value(std::int64_t v) {
  BenchReporter::Value out;
  out.kind = BenchReporter::Value::Kind::kInt;
  out.i = v;
  return out;
}

BenchReporter::Value double_value(double v) {
  BenchReporter::Value out;
  out.kind = BenchReporter::Value::Kind::kDouble;
  out.d = v;
  return out;
}

void set_in(BenchReporter::Params& params, const std::string& key,
            BenchReporter::Value v) {
  for (auto& [k, old] : params) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  params.emplace_back(key, std::move(v));
}

void write_params(JsonWriter& w, const BenchReporter::Params& params) {
  w.begin_object();
  for (const auto& [k, v] : params) {
    w.key(k);
    switch (v.kind) {
      case BenchReporter::Value::Kind::kString: w.value(v.s); break;
      case BenchReporter::Value::Kind::kInt: w.value(v.i); break;
      case BenchReporter::Value::Kind::kDouble: w.value(v.d); break;
    }
  }
  w.end_object();
}

}  // namespace

BenchReporter::Row& BenchReporter::Row::set_param(const std::string& key,
                                                 const std::string& v) {
  set_in(params_, key, str_value(v));
  return *this;
}
BenchReporter::Row& BenchReporter::Row::set_param(const std::string& key,
                                                 std::int64_t v) {
  set_in(params_, key, int_value(v));
  return *this;
}
BenchReporter::Row& BenchReporter::Row::set_param(const std::string& key,
                                                 double v) {
  set_in(params_, key, double_value(v));
  return *this;
}

void BenchReporter::set_param(const std::string& key, const std::string& v) {
  set_in(params_, key, str_value(v));
}
void BenchReporter::set_param(const std::string& key, std::int64_t v) {
  set_in(params_, key, int_value(v));
}
void BenchReporter::set_param(const std::string& key, double v) {
  set_in(params_, key, double_value(v));
}

BenchReporter::Row& BenchReporter::add_row(std::string label) {
  rows_.emplace_back(std::move(label));
  return rows_.back();
}

std::string BenchReporter::to_json() const {
  double sim_total = 0.0;
  double wall_total = 0.0;
  std::map<std::string, std::int64_t> counters_total;
  for (const Row& r : rows_) {
    sim_total += r.sim_seconds_;
    wall_total += r.wall_seconds_;
    for (const auto& [k, v] : r.counters_) counters_total[k] += v;
  }

  JsonWriter w;
  w.begin_object();
  w.key("name").value(name_);
  w.key("scale").value(scale_);
  w.key("params");
  write_params(w, params_);
  w.key("sim_seconds").value(sim_total);
  w.key("wall_seconds").value(wall_total);
  w.key("counters").begin_object();
  for (const auto& [k, v] : counters_total) w.key(k).value(v);
  w.end_object();
  w.key("results").begin_array();
  for (const Row& r : rows_) {
    w.begin_object();
    w.key("label").value(r.label_);
    w.key("params");
    write_params(w, r.params_);
    w.key("sim_seconds").value(r.sim_seconds_);
    w.key("wall_seconds").value(r.wall_seconds_);
    w.key("counters").begin_object();
    for (const auto& [k, v] : r.counters_) w.key(k).value(v);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string BenchReporter::write(std::string dir) const {
  if (dir.empty()) {
    const char* env = std::getenv("GEPETO_BENCH_DIR");
    dir = env != nullptr && *env != '\0' ? env : ".";
  }
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return "";
  out << to_json() << "\n";
  out.close();
  return out ? path : "";
}

}  // namespace gepeto::telemetry
