// BenchReporter: machine-readable bench output next to the human tables.
//
// Every bench binary builds one reporter, adds a row per configuration it
// measured, and writes `BENCH_<name>.json` into the current directory (or
// $GEPETO_BENCH_DIR). Schema:
//
//   {
//     "name": "table3_kmeans",
//     "scale": "smoke" | "paper",
//     "params": { ...bench-wide parameters... },
//     "sim_seconds": <sum over rows>,
//     "wall_seconds": <sum over rows>,
//     "counters": { ...summed over rows... },
//     "results": [
//       { "label": "...", "params": {...}, "sim_seconds": s,
//         "wall_seconds": w, "counters": {...} }, ...
//     ]
//   }
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gepeto::telemetry {

class BenchReporter {
 public:
  struct Value {
    enum class Kind { kString, kInt, kDouble };
    Kind kind = Kind::kString;
    std::string s;
    std::int64_t i = 0;
    double d = 0.0;
  };
  using Params = std::vector<std::pair<std::string, Value>>;

  class Row {
   public:
    explicit Row(std::string label) : label_(std::move(label)) {}
    Row& set_param(const std::string& key, const std::string& v);
    Row& set_param(const std::string& key, const char* v) {
      return set_param(key, std::string(v));
    }
    Row& set_param(const std::string& key, std::int64_t v);
    Row& set_param(const std::string& key, double v);
    Row& set_sim_seconds(double s) {
      sim_seconds_ = s;
      return *this;
    }
    Row& set_wall_seconds(double s) {
      wall_seconds_ = s;
      return *this;
    }
    Row& add_counter(const std::string& name, std::int64_t v) {
      counters_[name] += v;
      return *this;
    }

   private:
    friend class BenchReporter;
    std::string label_;
    Params params_;
    double sim_seconds_ = 0.0;
    double wall_seconds_ = 0.0;
    std::map<std::string, std::int64_t> counters_;
  };

  BenchReporter(std::string name, std::string scale)
      : name_(std::move(name)), scale_(std::move(scale)) {}

  void set_param(const std::string& key, const std::string& v);
  void set_param(const std::string& key, const char* v) {
    set_param(key, std::string(v));
  }
  void set_param(const std::string& key, std::int64_t v);
  void set_param(const std::string& key, double v);

  Row& add_row(std::string label);

  std::string to_json() const;

  /// Writes BENCH_<name>.json into `dir` (default: $GEPETO_BENCH_DIR, else
  /// the current directory). Returns the path written, or "" on I/O error.
  std::string write(std::string dir = "") const;

 private:
  std::string name_;
  std::string scale_;
  Params params_;
  std::vector<Row> rows_;
};

}  // namespace gepeto::telemetry
