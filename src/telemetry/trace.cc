#include "telemetry/trace.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/check.h"
#include "telemetry/json.h"

namespace gepeto::telemetry {

WallScope& WallScope::operator=(WallScope&& o) noexcept {
  if (this != &o) {
    if (rec_ != nullptr) rec_->end_wall_span(id_);
    rec_ = o.rec_;
    id_ = o.id_;
    o.rec_ = nullptr;
  }
  return *this;
}

WallScope::~WallScope() {
  if (rec_ != nullptr) rec_->end_wall_span(id_);
}

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

double TraceRecorder::wall_now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

WallScope TraceRecorder::wall_span(std::string name, std::string category,
                                   std::vector<SpanArg> args) {
  const double now = wall_now();
  std::lock_guard<std::mutex> lock(mu_);
  auto& stack = wall_stacks_[std::this_thread::get_id()];
  Span s;
  s.name = std::move(name);
  s.category = std::move(category);
  s.timeline = Timeline::kWall;
  s.start_s = now;
  s.end_s = now;  // patched by end_wall_span
  s.id = static_cast<std::int64_t>(spans_.size());
  s.parent = stack.empty() ? kNoParent : stack.back();
  s.args = std::move(args);
  stack.push_back(s.id);
  spans_.push_back(std::move(s));
  return WallScope(this, spans_.back().id);
}

void TraceRecorder::end_wall_span(std::int64_t id) {
  const double now = wall_now();
  std::lock_guard<std::mutex> lock(mu_);
  GEPETO_CHECK(id >= 0 && id < static_cast<std::int64_t>(spans_.size()));
  spans_[static_cast<std::size_t>(id)].end_s = now;
  auto& stack = wall_stacks_[std::this_thread::get_id()];
  // Scopes are destroyed innermost-first on a given thread; tolerate an
  // out-of-order close (moved-from scopes) by erasing wherever it sits.
  auto it = std::find(stack.begin(), stack.end(), id);
  if (it != stack.end()) stack.erase(it);
}

void TraceRecorder::wall_instant(std::string name, std::string category,
                                 std::vector<SpanArg> args) {
  const double now = wall_now();
  std::lock_guard<std::mutex> lock(mu_);
  auto& stack = wall_stacks_[std::this_thread::get_id()];
  Span s;
  s.name = std::move(name);
  s.category = std::move(category);
  s.timeline = Timeline::kWall;
  s.start_s = now;
  s.end_s = now;
  s.id = static_cast<std::int64_t>(spans_.size());
  s.parent = stack.empty() ? kNoParent : stack.back();
  s.instant = true;
  s.args = std::move(args);
  spans_.push_back(std::move(s));
}

std::int64_t TraceRecorder::add_sim_span(std::string name,
                                         std::string category, double start_s,
                                         double end_s, int node, int slot,
                                         std::int64_t parent,
                                         std::vector<SpanArg> args) {
  std::lock_guard<std::mutex> lock(mu_);
  Span s;
  s.name = std::move(name);
  s.category = std::move(category);
  s.timeline = Timeline::kSim;
  s.start_s = start_s;
  s.end_s = end_s;
  s.node = node;
  s.slot = slot;
  s.id = static_cast<std::int64_t>(spans_.size());
  s.parent = parent == kCurrentParent
                 ? (sim_parents_.empty() ? kNoParent : sim_parents_.back())
                 : parent;
  s.args = std::move(args);
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void TraceRecorder::add_sim_instant(std::string name, std::string category,
                                    double at_s, int node, int slot,
                                    std::vector<SpanArg> args) {
  const std::int64_t id = add_sim_span(std::move(name), std::move(category),
                                       at_s, at_s, node, slot, kCurrentParent,
                                       std::move(args));
  std::lock_guard<std::mutex> lock(mu_);
  spans_[static_cast<std::size_t>(id)].instant = true;
}

std::int64_t TraceRecorder::begin_sim_span(std::string name,
                                           std::string category,
                                           double start_s, int node, int slot,
                                           std::vector<SpanArg> args) {
  const std::int64_t id =
      add_sim_span(std::move(name), std::move(category), start_s, start_s,
                   node, slot, kCurrentParent, std::move(args));
  std::lock_guard<std::mutex> lock(mu_);
  sim_parents_.push_back(id);
  return id;
}

void TraceRecorder::end_sim_span(std::int64_t id, double end_s,
                                 std::vector<SpanArg> extra_args) {
  std::lock_guard<std::mutex> lock(mu_);
  GEPETO_CHECK(id >= 0 && id < static_cast<std::int64_t>(spans_.size()));
  Span& s = spans_[static_cast<std::size_t>(id)];
  s.end_s = end_s;
  for (auto& a : extra_args) s.args.push_back(std::move(a));
  auto it = std::find(sim_parents_.begin(), sim_parents_.end(), id);
  if (it != sim_parents_.end()) sim_parents_.erase(it, sim_parents_.end());
}

std::int64_t TraceRecorder::current_sim_parent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sim_parents_.empty() ? kNoParent : sim_parents_.back();
}

double TraceRecorder::sim_cursor() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sim_cursor_;
}

void TraceRecorder::set_sim_cursor(double t) {
  std::lock_guard<std::mutex> lock(mu_);
  sim_cursor_ = t;
}

double TraceRecorder::sim_end() const {
  std::lock_guard<std::mutex> lock(mu_);
  double end = 0.0;
  for (const Span& s : spans_) {
    if (s.timeline == Timeline::kSim) end = std::max(end, s.end_s);
  }
  return end;
}

std::vector<Span> TraceRecorder::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string TraceRecorder::chrome_trace_json(Timeline timeline) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();

  // Metadata: name every (pid) and (pid, tid) that appears, driver first.
  std::set<int> pids;
  std::set<std::pair<int, int>> tids;
  for (const Span& s : spans_) {
    if (s.timeline != timeline) continue;
    const int pid = s.node + 1;
    pids.insert(pid);
    tids.insert({pid, s.slot});
  }
  for (int pid : pids) {
    w.begin_object();
    w.key("ph").value("M");
    w.key("name").value("process_name");
    w.key("pid").value(pid);
    w.key("tid").value(0);
    w.key("args").begin_object();
    w.key("name").value(pid == 0 ? std::string("driver")
                                 : "node " + std::to_string(pid - 1));
    w.end_object();
    w.end_object();
    w.begin_object();
    w.key("ph").value("M");
    w.key("name").value("process_sort_index");
    w.key("pid").value(pid);
    w.key("tid").value(0);
    w.key("args").begin_object();
    w.key("sort_index").value(pid);
    w.end_object();
    w.end_object();
  }
  for (const auto& [pid, tid] : tids) {
    w.begin_object();
    w.key("ph").value("M");
    w.key("name").value("thread_name");
    w.key("pid").value(pid);
    w.key("tid").value(tid);
    w.key("args").begin_object();
    w.key("name").value(pid == 0 ? std::string("main")
                                 : "slot " + std::to_string(tid));
    w.end_object();
    w.end_object();
  }

  for (const Span& s : spans_) {
    if (s.timeline != timeline) continue;
    w.begin_object();
    w.key("name").value(s.name);
    w.key("cat").value(s.category);
    if (s.instant) {
      w.key("ph").value("i");
      w.key("s").value("t");
    } else {
      w.key("ph").value("X");
      w.key("dur").value((s.end_s - s.start_s) * 1e6);
    }
    w.key("ts").value(s.start_s * 1e6);
    w.key("pid").value(s.node + 1);
    w.key("tid").value(s.slot);
    if (!s.args.empty() || s.parent != kNoParent) {
      w.key("args").begin_object();
      if (s.parent != kNoParent) w.key("parent").value(s.parent);
      for (const SpanArg& a : s.args) w.key(a.key).value(a.value);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  sim_parents_.clear();
  wall_stacks_.clear();
  sim_cursor_ = 0.0;
}

}  // namespace gepeto::telemetry
