// Minimal streaming JSON writer shared by the Chrome-trace, metrics, and
// bench-report exporters. No DOM, no dependencies; output is deterministic:
// numbers use std::to_chars (shortest round-trip, locale-independent) and
// the writer emits keys exactly in the order the caller supplies them.
#pragma once

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gepeto::telemetry {

/// Escapes a string for inclusion inside JSON double quotes.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  static const char* kHex = "0123456789abcdef";
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

inline std::string json_number(double v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) return "0";
  std::string s(buf, ptr);
  // Bare "nan"/"inf" are not valid JSON; clamp to null-ish zero.
  if (s.find_first_of("ni") != std::string::npos &&
      s.find('e') == std::string::npos && s.find('.') == std::string::npos &&
      s.find_first_not_of("-0123456789") != std::string::npos) {
    return "0";
  }
  return s;
}

inline std::string json_number(std::int64_t v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc() ? std::string(buf, ptr) : std::string("0");
}

inline std::string json_number(std::uint64_t v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc() ? std::string(buf, ptr) : std::string("0");
}

/// Streaming writer with automatic comma placement. Usage:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("kmeans");
///   w.key("rows").begin_array();
///   w.value(std::int64_t{3});
///   w.end_array();
///   w.end_object();
///   std::string out = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object() {
    lead_in();
    out_ += '{';
    fresh_.push_back(true);
    return *this;
  }
  JsonWriter& end_object() {
    out_ += '}';
    fresh_.pop_back();
    return *this;
  }
  JsonWriter& begin_array() {
    lead_in();
    out_ += '[';
    fresh_.push_back(true);
    return *this;
  }
  JsonWriter& end_array() {
    out_ += ']';
    fresh_.pop_back();
    return *this;
  }
  JsonWriter& key(std::string_view k) {
    comma();
    out_ += '"';
    out_ += json_escape(k);
    out_ += "\":";
    has_key_ = true;
    return *this;
  }
  JsonWriter& value(std::string_view v) {
    lead_in();
    out_ += '"';
    out_ += json_escape(v);
    out_ += '"';
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(const std::string& v) {
    return value(std::string_view(v));
  }
  JsonWriter& value(double v) {
    lead_in();
    out_ += json_number(v);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    lead_in();
    out_ += json_number(v);
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    lead_in();
    out_ += json_number(v);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v) {
    lead_in();
    out_ += v ? "true" : "false";
    return *this;
  }

  const std::string& str() const { return out_; }

 private:
  // Called before any value or container opener: emits the separating comma
  // unless a key was just written (the value belongs to that key).
  void lead_in() {
    if (has_key_) {
      has_key_ = false;
    } else {
      comma();
    }
  }
  void comma() {
    if (fresh_.empty()) return;
    if (fresh_.back()) {
      fresh_.back() = false;
    } else {
      out_ += ',';
    }
  }

  std::string out_;
  std::vector<bool> fresh_;  // per open container: no element emitted yet
  bool has_key_ = false;
};

}  // namespace gepeto::telemetry
