// Running MapReduce jobs over columnar trace files.
//
// ColumnarRecords adapts a ColumnarSplitReader to the engine's record-reader
// policy shape (see mr::detail::TextRecords): each trace decodes to the same
// 32-byte binary record the seqfile path uses (geo::append_binary_trace), so
// every binary mapper runs unchanged over text-seqfile or columnar input —
// drivers pick the format per dataset, as record_io.h promises.
//
// Corrupt or truncated columnar data (ColumnarError, a TaskError) surfaces
// as a structured attempt failure: the engine retries the task and, if the
// corruption is persistent, fails the job with a JobError instead of feeding
// the pipeline garbage records. Record keys are indices within the split, so
// skip mode addresses records exactly as it does for seqfile input.
#pragma once

#include <string_view>

#include "geo/geolife.h"
#include "mapreduce/engine.h"
#include "storage/colfile.h"

namespace gepeto::storage {

/// Record-reader policy over a columnar split (one trace per record).
struct ColumnarRecords {
  ColumnarSplitReader reader;
  std::string record;
  std::int64_t index = -1;

  ColumnarRecords(std::string_view file, std::uint64_t off, std::uint64_t len)
      : reader(make_reader(file, off, len)) {}

  bool next() {
    try {
      if (!reader.next()) return false;
    } catch (const mr::TaskError& e) {
      // Corrupt block: a machine-style failure (not one bad record), so the
      // attempt is retried and a persistent fault exhausts the task.
      throw mr::detail::AttemptFailure{-1, e.what()};
    }
    record.clear();
    geo::append_binary_trace(record, reader.trace());
    ++index;
    return true;
  }
  std::int64_t key() const { return index; }  ///< record index within split
  std::string_view value() const { return record; }
  std::uint64_t overread_bytes() const { return 0; }

  // --- batch protocol (engine fast path; see mr::detail::BatchRecords) ------
  // One decoded block per batch, as struct-of-arrays column spans: no
  // append_binary_trace / trace_from_binary round-trip on the hot path. Keys
  // stay record indices within the split — batch i covers
  // [batch_first_key(), batch_first_key() + batch().size()), the same keys
  // the record-at-a-time mode would have assigned.

  bool next_batch() {
    try {
      if (!reader.next_block_columns(columns)) return false;
    } catch (const mr::TaskError& e) {
      throw mr::detail::AttemptFailure{-1, e.what()};
    }
    first_key = index + 1;
    index += static_cast<std::int64_t>(columns.size());
    return true;
  }
  const TraceColumns& batch() const { return columns; }
  std::int64_t batch_first_key() const { return first_key; }

  TraceColumns columns;
  std::int64_t first_key = 0;

 private:
  static ColumnarSplitReader make_reader(std::string_view file,
                                         std::uint64_t off,
                                         std::uint64_t len) {
    try {
      return ColumnarSplitReader(file, off, len);
    } catch (const mr::TaskError& e) {
      throw mr::detail::AttemptFailure{-1, e.what()};
    }
  }
};

/// Map-only job over columnar input files. The mapper receives (record index
/// within the split, 32-byte binary trace record) — identical to
/// mr::run_binary_map_only_job over seqfile input.
template <typename MapperFactory>
mr::JobResult run_columnar_map_only_job(mr::Dfs& dfs,
                                        const mr::ClusterConfig& config,
                                        const mr::JobConfig& job,
                                        MapperFactory make_mapper) {
  return mr::detail::run_map_only_job_impl<ColumnarRecords>(dfs, config, job,
                                                            make_mapper);
}

/// Full map-reduce job over columnar input files.
template <typename MapperFactory, typename ReducerFactory,
          typename CombinerFactory = mr::NoCombiner>
mr::JobResult run_columnar_mapreduce_job(mr::Dfs& dfs,
                                         const mr::ClusterConfig& config,
                                         const mr::JobConfig& job,
                                         MapperFactory make_mapper,
                                         ReducerFactory make_reducer,
                                         CombinerFactory make_combiner = {}) {
  return mr::detail::run_mapreduce_job_impl<ColumnarRecords>(
      dfs, config, job, make_mapper, make_reducer, make_combiner);
}

}  // namespace gepeto::storage
