#include "storage/colfile.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>

#include "common/check.h"
#include "ipc/frame.h"
#include "ipc/wire.h"
#include "mapreduce/dfs.h"

namespace gepeto::storage {

namespace {

constexpr char kFileMagic[8] = {'G', 'P', 'C', 'O', 'L', '1', '\r', '\n'};
constexpr char kFooterMagic[8] = {'G', 'P', 'C', 'O', 'L', 'F', 'T', 'R'};
constexpr std::size_t kMagicSize = 8;
// Trailer: u64 footer_offset + u32 footer_crc + footer magic.
constexpr std::size_t kTrailerSize = 8 + 4 + 8;

[[noreturn]] void corrupt(const std::string& what) {
  throw ColumnarError("columnar file: " + what);
}

std::uint64_t double_bits(double x) {
  std::uint64_t b;
  std::memcpy(&b, &x, 8);
  return b;
}

double bits_double(std::uint64_t b) {
  double x;
  std::memcpy(&x, &b, 8);
  return x;
}

}  // namespace

namespace colenc {

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

std::uint64_t get_varint(std::string_view in, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (pos >= in.size()) corrupt("truncated varint");
    if (shift >= 64) corrupt("varint overflows 64 bits");
    const auto byte = static_cast<unsigned char>(in[pos++]);
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

void put_xorfp(std::string& out, double x, std::uint64_t& prev) {
  const std::uint64_t bits = double_bits(x);
  const std::uint64_t diff = bits ^ prev;
  prev = bits;
  if (diff == 0) {
    out.push_back('\0');
    return;
  }
  const int lead = std::countl_zero(diff) / 8;   // zero bytes at the MSB end
  const int trail = std::countr_zero(diff) / 8;  // zero bytes at the LSB end
  const int mid = 8 - lead - trail;              // >= 1
  out.push_back(static_cast<char>(1 + (lead << 3) + trail));
  const std::uint64_t m = diff >> (8 * trail);
  for (int i = 0; i < mid; ++i)
    out.push_back(static_cast<char>((m >> (8 * i)) & 0xff));
}

double get_xorfp(std::string_view in, std::size_t& pos, std::uint64_t& prev) {
  if (pos >= in.size()) corrupt("truncated FP column");
  const auto control = static_cast<unsigned char>(in[pos++]);
  if (control == 0) return bits_double(prev);
  const int lead = (control - 1) >> 3;
  const int trail = (control - 1) & 7;
  const int mid = 8 - lead - trail;
  if (control > 64 || mid < 1) corrupt("bad FP control byte");
  if (pos + static_cast<std::size_t>(mid) > in.size())
    corrupt("truncated FP column");
  std::uint64_t m = 0;
  for (int i = 0; i < mid; ++i)
    m |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[pos++]))
         << (8 * i);
  prev ^= m << (8 * trail);
  return bits_double(prev);
}

}  // namespace colenc

ColumnarWriter::ColumnarWriter(ColumnarWriterOptions options)
    : options_(options) {
  GEPETO_CHECK(options_.block_records > 0);
  out_.append(kFileMagic, kMagicSize);
}

void ColumnarWriter::add(const geo::MobilityTrace& trace) {
  buffer_.push_back(trace);
  ++total_;
  if (buffer_.size() >= options_.block_records) flush_block();
}

void ColumnarWriter::flush_block() {
  if (buffer_.empty()) return;
  ColumnarBlockInfo info;
  info.offset = out_.size();
  info.records = buffer_.size();
  info.min_lat = info.max_lat = buffer_[0].latitude;
  info.min_lon = info.max_lon = buffer_[0].longitude;
  info.min_ts = info.max_ts = buffer_[0].timestamp;

  std::string payload;
  payload.reserve(buffer_.size() * 12);
  colenc::put_varint(payload, buffer_.size());
  std::int64_t prev_user = 0;
  for (const auto& t : buffer_) {
    colenc::put_varint(payload, colenc::zigzag(t.user_id - prev_user));
    prev_user = t.user_id;
  }
  std::int64_t prev_ts = 0;
  for (const auto& t : buffer_) {
    colenc::put_varint(payload, colenc::zigzag(t.timestamp - prev_ts));
    prev_ts = t.timestamp;
    info.min_ts = std::min(info.min_ts, t.timestamp);
    info.max_ts = std::max(info.max_ts, t.timestamp);
  }
  std::uint64_t prev = 0;
  for (const auto& t : buffer_) {
    colenc::put_xorfp(payload, t.latitude, prev);
    info.min_lat = std::min(info.min_lat, t.latitude);
    info.max_lat = std::max(info.max_lat, t.latitude);
  }
  prev = 0;
  for (const auto& t : buffer_) {
    colenc::put_xorfp(payload, t.longitude, prev);
    info.min_lon = std::min(info.min_lon, t.longitude);
    info.max_lon = std::max(info.max_lon, t.longitude);
  }
  prev = 0;
  for (const auto& t : buffer_) colenc::put_xorfp(payload, t.altitude_ft, prev);

  info.payload_bytes = payload.size();
  info.crc = ipc::crc32(payload.data(), payload.size());
  out_ += payload;
  blocks_.push_back(info);
  buffer_.clear();
}

std::string ColumnarWriter::finish() {
  namespace w = ipc::wire;
  flush_block();
  const std::uint64_t footer_offset = out_.size();
  std::string footer;
  for (const auto& b : blocks_) {
    w::put_u64(footer, b.offset);
    w::put_u64(footer, b.payload_bytes);
    w::put_u64(footer, b.records);
    w::put_u32(footer, b.crc);
    w::put_f64(footer, b.min_lat);
    w::put_f64(footer, b.max_lat);
    w::put_f64(footer, b.min_lon);
    w::put_f64(footer, b.max_lon);
    w::put_i64(footer, b.min_ts);
    w::put_i64(footer, b.max_ts);
  }
  w::put_u64(footer, blocks_.size());
  w::put_u64(footer, total_);
  const std::uint32_t footer_crc = ipc::crc32(footer.data(), footer.size());
  out_ += footer;
  w::put_u64(out_, footer_offset);
  w::put_u32(out_, footer_crc);
  out_.append(kFooterMagic, kMagicSize);
  return std::move(out_);
}

ColumnarFile::ColumnarFile(std::string_view bytes) : bytes_(bytes) {
  namespace w = ipc::wire;
  if (bytes.size() < kMagicSize + kTrailerSize) corrupt("truncated file");
  if (std::memcmp(bytes.data(), kFileMagic, kMagicSize) != 0)
    corrupt("bad magic (not a columnar trace file)");
  const std::size_t trailer = bytes.size() - kTrailerSize;
  if (std::memcmp(bytes.data() + trailer + 12, kFooterMagic, kMagicSize) != 0)
    corrupt("bad footer magic (truncated file?)");
  std::uint64_t footer_offset = 0;
  std::uint32_t footer_crc = 0;
  std::memcpy(&footer_offset, bytes.data() + trailer, 8);
  std::memcpy(&footer_crc, bytes.data() + trailer + 8, 4);
  if (footer_offset < kMagicSize || footer_offset > trailer)
    corrupt("footer offset out of range");
  const std::string_view footer =
      bytes.substr(footer_offset, trailer - footer_offset);
  if (ipc::crc32(footer.data(), footer.size()) != footer_crc)
    corrupt("footer CRC mismatch");

  try {
    // Entries are fixed-size; the two trailing u64s say how many.
    constexpr std::size_t kEntry = 3 * 8 + 4 + 4 * 8 + 2 * 8;
    if (footer.size() < 16 || (footer.size() - 16) % kEntry != 0)
      corrupt("footer size mismatch");
    w::Reader tail(footer.substr(footer.size() - 16));
    const std::uint64_t n = tail.get_u64();
    total_records_ = tail.get_u64();
    if (n != (footer.size() - 16) / kEntry) corrupt("footer count mismatch");
    w::Reader r(footer);
    blocks_.reserve(static_cast<std::size_t>(n));
    std::uint64_t seen = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      ColumnarBlockInfo b;
      b.offset = r.get_u64();
      b.payload_bytes = r.get_u64();
      b.records = r.get_u64();
      b.crc = r.get_u32();
      b.min_lat = r.get_f64();
      b.max_lat = r.get_f64();
      b.min_lon = r.get_f64();
      b.max_lon = r.get_f64();
      b.min_ts = r.get_i64();
      b.max_ts = r.get_i64();
      if (b.offset < kMagicSize || b.offset + b.payload_bytes > footer_offset)
        corrupt("block extent out of range");
      seen += b.records;
      blocks_.push_back(b);
    }
    if (seen != total_records_) corrupt("record count mismatch");
  } catch (const ipc::wire::WireError& e) {
    corrupt(std::string("unreadable footer: ") + e.what());
  }
}

std::vector<geo::MobilityTrace> ColumnarFile::read_block(std::size_t i) const {
  GEPETO_CHECK(i < blocks_.size());
  const ColumnarBlockInfo& b = blocks_[i];
  const std::string_view payload =
      bytes_.substr(static_cast<std::size_t>(b.offset),
                    static_cast<std::size_t>(b.payload_bytes));
  if (ipc::crc32(payload.data(), payload.size()) != b.crc)
    corrupt("block CRC mismatch at offset " + std::to_string(b.offset));

  std::size_t pos = 0;
  const std::uint64_t n = colenc::get_varint(payload, pos);
  if (n != b.records) corrupt("block record count disagrees with footer");
  std::vector<geo::MobilityTrace> traces(static_cast<std::size_t>(n));
  std::int64_t prev_user = 0;
  for (auto& t : traces) {
    prev_user += colenc::unzigzag(colenc::get_varint(payload, pos));
    t.user_id = static_cast<std::int32_t>(prev_user);
  }
  std::int64_t prev_ts = 0;
  for (auto& t : traces) {
    prev_ts += colenc::unzigzag(colenc::get_varint(payload, pos));
    t.timestamp = prev_ts;
  }
  std::uint64_t prev = 0;
  for (auto& t : traces) t.latitude = colenc::get_xorfp(payload, pos, prev);
  prev = 0;
  for (auto& t : traces) t.longitude = colenc::get_xorfp(payload, pos, prev);
  prev = 0;
  for (auto& t : traces) t.altitude_ft = colenc::get_xorfp(payload, pos, prev);
  if (pos != payload.size()) corrupt("block has trailing bytes");
  return traces;
}

void ColumnarFile::read_block_columns(std::size_t i, TraceColumns& out) const {
  GEPETO_CHECK(i < blocks_.size());
  const ColumnarBlockInfo& b = blocks_[i];
  const std::string_view payload =
      bytes_.substr(static_cast<std::size_t>(b.offset),
                    static_cast<std::size_t>(b.payload_bytes));
  if (ipc::crc32(payload.data(), payload.size()) != b.crc)
    corrupt("block CRC mismatch at offset " + std::to_string(b.offset));

  std::size_t pos = 0;
  const std::uint64_t n = colenc::get_varint(payload, pos);
  if (n != b.records) corrupt("block record count disagrees with footer");
  const std::size_t count = static_cast<std::size_t>(n);
  out.user_ids.resize(count);
  out.timestamps.resize(count);
  out.lats.resize(count);
  out.lons.resize(count);
  out.alts_ft.resize(count);
  std::int64_t prev_user = 0;
  for (auto& u : out.user_ids) {
    prev_user += colenc::unzigzag(colenc::get_varint(payload, pos));
    u = static_cast<std::int32_t>(prev_user);
  }
  std::int64_t prev_ts = 0;
  for (auto& ts : out.timestamps) {
    prev_ts += colenc::unzigzag(colenc::get_varint(payload, pos));
    ts = prev_ts;
  }
  std::uint64_t prev = 0;
  for (auto& v : out.lats) v = colenc::get_xorfp(payload, pos, prev);
  prev = 0;
  for (auto& v : out.lons) v = colenc::get_xorfp(payload, pos, prev);
  prev = 0;
  for (auto& v : out.alts_ft) v = colenc::get_xorfp(payload, pos, prev);
  if (pos != payload.size()) corrupt("block has trailing bytes");
}

ColumnarSplitReader::ColumnarSplitReader(std::string_view file,
                                         std::uint64_t offset,
                                         std::uint64_t len)
    : file_(file) {
  // A split owns the blocks whose payload starts inside [offset, offset+len)
  // — the seqfile ownership rule, applied to footer-indexed blocks. Splits
  // tile the file, so each block belongs to exactly one split (the first
  // split also covers the magic prefix; footer offsets can never match a
  // block start).
  const std::uint64_t end = offset + len;
  while (next_block_ < file_.num_blocks() &&
         file_.blocks()[next_block_].offset < offset)
    ++next_block_;
  end_block_ = next_block_;
  while (end_block_ < file_.num_blocks() &&
         file_.blocks()[end_block_].offset < end)
    ++end_block_;
}

bool ColumnarSplitReader::next() {
  if (started_ && pos_ + 1 < block_.size()) {
    ++pos_;
    return true;
  }
  while (next_block_ < end_block_) {
    block_ = file_.read_block(next_block_++);
    if (!block_.empty()) {
      pos_ = 0;
      started_ = true;
      return true;
    }
  }
  return false;
}

bool ColumnarSplitReader::next_block_columns(TraceColumns& out) {
  while (next_block_ < end_block_) {
    file_.read_block_columns(next_block_++, out);
    if (out.size() > 0) return true;
  }
  out.clear();
  return false;
}

void dataset_to_dfs_columnar(mr::Dfs& dfs, const std::string& prefix,
                             const geo::GeolocatedDataset& dataset,
                             int num_files, ColumnarWriterOptions options) {
  GEPETO_CHECK(num_files > 0);
  const auto users = dataset.users();
  const int files = std::min<int>(
      num_files, std::max<int>(1, static_cast<int>(users.size())));
  const std::size_t per_file =
      (users.size() + static_cast<std::size_t>(files) - 1) /
      static_cast<std::size_t>(files);

  std::size_t u = 0;
  for (int fidx = 0; fidx < files && u < users.size(); ++fidx) {
    ColumnarWriter writer(options);
    for (std::size_t i = 0; i < per_file && u < users.size(); ++i, ++u)
      for (const auto& t : dataset.trail(users[u])) writer.add(t);
    char name[32];
    std::snprintf(name, sizeof(name), "/points-%05d", fidx);
    dfs.put(prefix + name, writer.finish());
  }
}

geo::GeolocatedDataset dataset_from_dfs_columnar(const mr::Dfs& dfs,
                                                 const std::string& prefix) {
  geo::GeolocatedDataset out;
  for (const auto& path : dfs.list(prefix)) {
    const ColumnarFile file(dfs.read(path));
    for (std::size_t b = 0; b < file.num_blocks(); ++b)
      for (const auto& t : file.read_block(b)) out.add(t);
  }
  return out;
}

std::uint64_t count_dfs_columnar_records(const mr::Dfs& dfs,
                                         const std::string& prefix) {
  std::uint64_t n = 0;
  for (const auto& path : dfs.list(prefix))
    n += ColumnarFile(dfs.read(path)).num_records();
  return n;
}

void for_each_dfs_columnar_trace(
    const mr::Dfs& dfs, const std::string& prefix,
    const std::function<void(const geo::MobilityTrace&)>& fn) {
  for (const auto& path : dfs.list(prefix)) {
    const ColumnarFile file(dfs.read(path));
    for (std::size_t b = 0; b < file.num_blocks(); ++b)
      for (const auto& t : file.read_block(b)) fn(t);
  }
}

}  // namespace gepeto::storage
