#include "storage/spill.h"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "common/check.h"

namespace gepeto::storage {

namespace fs = std::filesystem;

namespace {

std::string sanitize_name(const std::string& name) {
  std::string out;
  for (char c : name) {
    const unsigned char u = static_cast<unsigned char>(c);
    out.push_back(std::isalnum(u) != 0 || c == '-' || c == '_' ? c : '_');
  }
  if (out.empty()) out = "job";
  if (out.size() > 48) out.resize(48);
  return out;
}

}  // namespace

std::string create_spill_dir(const std::string& job_name) {
  static std::atomic<std::uint64_t> seq{0};
  const char* env = std::getenv("GEPETO_SCRATCH_DIR");
  const fs::path base = env != nullptr && *env != '\0'
                            ? fs::path(env)
                            : fs::temp_directory_path();
  const fs::path dir =
      base / ("gepeto-spill-" + sanitize_name(job_name) + "-" +
              std::to_string(::getpid()) + "-" +
              std::to_string(seq.fetch_add(1)));
  std::error_code ec;
  fs::create_directories(dir, ec);
  GEPETO_CHECK_MSG(!ec, "cannot create spill dir " << dir.string() << ": "
                                                   << ec.message());
  return dir.string();
}

void remove_spill_dir(const std::string& path) noexcept {
  if (path.empty()) return;
  std::error_code ec;
  fs::remove_all(path, ec);  // best effort: destructors must not throw
}

std::uint64_t env_sort_memory_budget() {
  const char* env = std::getenv("GEPETO_SORT_MEMORY_BUDGET");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || (end != nullptr && *end != '\0')) return 0;
  return static_cast<std::uint64_t>(v);
}

}  // namespace gepeto::storage
