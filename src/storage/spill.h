// Out-of-core shuffle support: sorted-run spill files and streamed run
// cursors (ROADMAP item 1, the other half of the columnar format).
//
// When JobConfig::sort_memory_budget_bytes is set, a map task's per-partition
// emit buffer no longer grows without bound: once its accounted bytes reach
// the budget, the buffer is stable-sorted and appended to a per-(task,
// attempt, partition) scratch file as one *sorted run*; the records still in
// memory when the task finishes form the final in-memory "tail" run. A
// partition's shuffle output is then a PartitionRuns — zero or more disk runs
// plus the tail — and the reduce side external-merges all runs of all map
// tasks with the same loser tree the in-memory path uses (merge.h), streaming
// each disk run frame by frame instead of materializing it.
//
// Byte identity (the property the differential harness enforces): spilling
// cuts a partition's emission sequence into contiguous chunks, each
// stable-sorted; merging them with the loser tree's (key, run index)
// tie-break — runs ordered (map task, spill order, tail last) — reproduces
// exactly the stable sort of the whole emission sequence, which is what the
// in-memory path computes. So outputs are byte-identical to the unbudgeted
// run at any budget, on both the thread and process backends (the process
// backend ships PartitionRuns as {file path, run metas, tail} blobs; map and
// reduce workers share the jobtracker's scratch directory via fork).
//
// On-disk run layout (wire-blob format, framed): a run is a sequence of
// frames, each
//
//   u64 payload_len | payload = u64 n, n keys, u64 n, n values
//
// with keys/values encoded by ipc::wire::put_value — the same byte layout as
// the wire shuffle's run blobs, sliced into frames of at most
// kSpillFrameRecords so a cursor never holds more than one frame in memory.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"
#include "ipc/wire.h"
#include "mapreduce/job.h"
#include "mapreduce/merge.h"

namespace gepeto::storage {

/// Records per spill frame: bounds a file cursor's memory to one frame.
inline constexpr std::size_t kSpillFrameRecords = 4096;

// --- scratch-directory lifecycle (spill.cc) ---------------------------------

/// Create a fresh job-scoped spill directory `gepeto-spill-<job>-<pid>-<seq>`
/// under $GEPETO_SCRATCH_DIR (or the system tmp dir). The `gepeto-` prefix
/// matches the CI leftover check, which asserts none survive a run.
std::string create_spill_dir(const std::string& job_name);

/// Best-effort recursive removal (never throws).
void remove_spill_dir(const std::string& path) noexcept;

/// Parse $GEPETO_SORT_MEMORY_BUDGET (plain bytes); 0 when unset or garbage.
/// Lets CI force spills across every job without per-driver plumbing.
std::uint64_t env_sort_memory_budget();

/// RAII spill directory for one job: created before the worker pool forks
/// (children inherit the path), removed on every exit path — including a
/// thrown JobError — so no scratch survives the job.
class SpillScratch {
 public:
  explicit SpillScratch(const std::string& job_name)
      : dir_(create_spill_dir(job_name)) {}
  ~SpillScratch() { remove_spill_dir(dir_); }
  SpillScratch(const SpillScratch&) = delete;
  SpillScratch& operator=(const SpillScratch&) = delete;

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

/// One sorted run inside a spill file.
struct RunMeta {
  std::uint64_t offset = 0;   ///< first frame's length prefix
  std::uint64_t bytes = 0;    ///< frames + prefixes
  std::uint64_t records = 0;
};

/// Appends sorted runs to one spill file. Created lazily by MapContext on the
/// first flush of a partition; closed (flushed) when the partition is taken.
template <typename K, typename V>
class SpillFileWriter {
 public:
  explicit SpillFileWriter(std::string path) : path_(std::move(path)) {}

  const std::string& path() const { return path_; }

  /// Append `pairs` (already sorted) as one run.
  RunMeta append_run(const std::vector<std::pair<K, V>>& pairs) {
    namespace w = ipc::wire;
    if (!out_.is_open()) {
      out_.open(path_, std::ios::binary | std::ios::trunc);
      GEPETO_CHECK_MSG(out_.good(), "cannot create spill file " << path_);
    }
    RunMeta meta;
    meta.offset = bytes_;
    meta.records = pairs.size();
    std::string buf;
    for (std::size_t i = 0; i < pairs.size(); i += kSpillFrameRecords) {
      const std::size_t n = std::min(kSpillFrameRecords, pairs.size() - i);
      std::string payload;
      w::put_u64(payload, n);
      for (std::size_t j = i; j < i + n; ++j)
        w::put_value(payload, pairs[j].first);
      w::put_u64(payload, n);
      for (std::size_t j = i; j < i + n; ++j)
        w::put_value(payload, pairs[j].second);
      w::put_u64(buf, payload.size());
      buf += payload;
    }
    out_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    GEPETO_CHECK_MSG(out_.good(), "spill write failed: " << path_);
    bytes_ += buf.size();
    meta.bytes = buf.size();
    return meta;
  }

  /// Flush and close; the file is now readable by other processes.
  void close() {
    if (out_.is_open()) {
      out_.flush();
      GEPETO_CHECK_MSG(out_.good(), "spill flush failed: " << path_);
      out_.close();
    }
  }

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t bytes_ = 0;
};

/// A reducer partition's share of one map task's output: sorted disk runs
/// (in spill order) plus the in-memory tail run. `file` is empty when the
/// task never spilled this partition — the budget-0 configuration reduces to
/// tail-only PartitionRuns, i.e. exactly the old in-memory shuffle.
template <typename K, typename V>
struct PartitionRuns {
  std::string file;
  std::vector<RunMeta> disk_runs;
  mr::SortedRun<K, V> tail;

  bool has_disk() const { return !disk_runs.empty(); }
  bool empty() const { return disk_runs.empty() && tail.empty(); }
  std::uint64_t records() const {
    std::uint64_t n = tail.size();
    for (const auto& m : disk_runs) n += m.records;
    return n;
  }

  /// Unlink the spill file early (e.g. once a combiner has rewritten the
  /// runs). The job-level SpillScratch would catch it anyway; this frees the
  /// disk as soon as the data is dead.
  void remove_file() {
    if (!file.empty()) std::remove(file.c_str());
    file.clear();
    disk_runs.clear();
  }
};

/// Cursor over one sorted run — in-memory (a SortedRun tail) or file-backed
/// (streamed one frame at a time). Satisfies the cursor shape
/// mr::detail::CursorLoserTree merges: key_type/value_type, exhausted(),
/// key(), value(), advance(). Values are read through const references and
/// *copied* by consumers, so several cursors (reduce attempts, retries) can
/// iterate the same underlying run.
template <typename K, typename V>
class SpillRunCursor {
 public:
  using key_type = K;
  using value_type = V;

  static SpillRunCursor memory(const mr::SortedRun<K, V>* run) {
    SpillRunCursor c;
    c.mem_ = run;
    return c;
  }

  static SpillRunCursor file(const std::string& path, RunMeta meta) {
    SpillRunCursor c;
    c.path_ = path;
    c.meta_ = meta;
    c.remaining_ = meta.records;
    c.open_and_refill();
    return c;
  }

  bool exhausted() const {
    if (mem_ != nullptr) return pos_ >= mem_->size();
    return pos_ >= frame_.size() && remaining_ == 0;
  }

  const K& key() const {
    return mem_ != nullptr ? mem_->keys[pos_] : frame_.keys[pos_];
  }
  const V& value() const {
    return mem_ != nullptr ? mem_->values[pos_] : frame_.values[pos_];
  }

  void advance() {
    ++pos_;
    if (mem_ == nullptr && pos_ >= frame_.size() && remaining_ > 0) refill();
  }

  /// Wall time spent reading + decoding frames (external-merge accounting).
  double io_seconds() const { return io_seconds_; }

 private:
  SpillRunCursor() = default;

  void open_and_refill() {
    in_ = std::make_unique<std::ifstream>(path_, std::ios::binary);
    if (!in_->good())
      throw mr::TaskError("cannot open spill file " + path_);
    in_->seekg(static_cast<std::streamoff>(meta_.offset));
    if (remaining_ > 0) refill();
  }

  void refill() {
    Stopwatch sw;
    namespace w = ipc::wire;
    std::uint64_t len = 0;
    in_->read(reinterpret_cast<char*>(&len), 8);
    if (!in_->good()) throw mr::TaskError("truncated spill file " + path_);
    buf_.resize(static_cast<std::size_t>(len));
    in_->read(buf_.data(), static_cast<std::streamsize>(len));
    if (!in_->good()) throw mr::TaskError("truncated spill file " + path_);
    try {
      w::Reader r(std::string_view(buf_.data(), buf_.size()));
      frame_.keys = w::get_vec<K>(r);
      frame_.values = w::get_vec<V>(r);
    } catch (const w::WireError& e) {
      throw mr::TaskError("corrupt spill frame in " + path_ + ": " + e.what());
    }
    if (frame_.keys.size() != frame_.values.size() || frame_.empty() ||
        frame_.size() > remaining_)
      throw mr::TaskError("corrupt spill frame in " + path_);
    remaining_ -= frame_.size();
    pos_ = 0;
    io_seconds_ += sw.seconds();
  }

  // In-memory mode.
  const mr::SortedRun<K, V>* mem_ = nullptr;
  // File mode.
  std::string path_;
  RunMeta meta_;
  std::unique_ptr<std::ifstream> in_;
  std::string buf_;
  mr::SortedRun<K, V> frame_;
  std::uint64_t remaining_ = 0;
  double io_seconds_ = 0.0;

  std::size_t pos_ = 0;
};

/// Cursors for one PartitionRuns, in merge-stability order: disk runs in
/// spill order, then the in-memory tail (the most recently emitted records).
template <typename K, typename V>
std::vector<SpillRunCursor<K, V>> partition_cursors(
    const PartitionRuns<K, V>& pr) {
  std::vector<SpillRunCursor<K, V>> cursors;
  cursors.reserve(pr.disk_runs.size() + 1);
  for (const RunMeta& m : pr.disk_runs)
    cursors.push_back(SpillRunCursor<K, V>::file(pr.file, m));
  if (!pr.tail.empty())
    cursors.push_back(SpillRunCursor<K, V>::memory(&pr.tail));
  return cursors;
}

/// Number of runs partition_cursors would build, without opening any files.
template <typename K, typename V>
std::uint64_t partition_run_count(const PartitionRuns<K, V>& pr) {
  return pr.disk_runs.size() + (pr.tail.empty() ? 0 : 1);
}

}  // namespace gepeto::storage
