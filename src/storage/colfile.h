// Binary columnar trace storage (ROADMAP item 1): the on-disk format that
// makes "millions of traces" literal.
//
// A columnar file holds mobility traces in blocks of (by default) 4096
// records. Within a block each field is stored as its own column with an
// encoding matched to its distribution:
//
//   user_id    delta + zigzag + LEB128 varint  (runs of equal ids -> 1 byte)
//   timestamp  delta + zigzag + LEB128 varint  (sorted seconds -> 1-2 bytes)
//   lat/lon    XOR-with-previous FP compression: the IEEE-754 bits of each
//              double are XORed with the previous value's bits and only the
//              non-zero byte span of the difference is stored (consecutive
//              GPS fixes share sign/exponent/high-mantissa bytes). Lossless
//              for every double, including non-finite values.
//   altitude   same XOR-FP codec (kept as f64, so round-trips are exact)
//
// Every block payload is protected by a CRC-32 recorded in the footer; the
// footer also carries per-block record counts and min/max lat/lon/timestamp
// stats (the hook for predicate pushdown), and is itself CRC-protected. The
// layout is:
//
//   [8B magic "GPCOL1\r\n"] [block payloads ...]
//   [footer: per-block {offset,bytes,records,crc,min/max stats},
//            block_count, total_records]
//   [trailer: u64 footer_offset, u32 footer_crc, 8B magic "GPCOLFTR"]
//
// Reading starts from the fixed-size trailer, so a file is splittable the
// same way seqfile.h is: a [offset, offset+len) input split owns exactly the
// blocks whose payload *starts* inside it (splits tile the file, so every
// block has one owner). Corrupt or truncated data surfaces as ColumnarError,
// which derives from mr::TaskError so the engine's retry/skip machinery sees
// a structured task failure, never garbage records.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "geo/trace.h"
#include "mapreduce/job.h"

namespace gepeto::mr {
class Dfs;
}

namespace gepeto::storage {

/// Structured failure for corrupt / truncated columnar data. Derives from
/// mr::TaskError so a bad block inside a running job is a task failure (fed
/// through retries and skip mode), not UB or a silent empty read.
class ColumnarError : public mr::TaskError {
 public:
  using mr::TaskError::TaskError;
};

/// Footer entry for one block: location, integrity, and column stats.
struct ColumnarBlockInfo {
  std::uint64_t offset = 0;        ///< payload start, from file byte 0
  std::uint64_t payload_bytes = 0;
  std::uint64_t records = 0;
  std::uint32_t crc = 0;           ///< CRC-32 of the payload bytes
  double min_lat = 0.0, max_lat = 0.0;
  double min_lon = 0.0, max_lon = 0.0;
  std::int64_t min_ts = 0, max_ts = 0;
};

struct ColumnarWriterOptions {
  std::size_t block_records = 4096;  ///< records per block (last may be short)
};

/// Streaming encoder: add() traces in the order they should be read back,
/// finish() returns the complete file bytes. Memory use is bounded by one
/// block regardless of how many records are written.
class ColumnarWriter {
 public:
  explicit ColumnarWriter(ColumnarWriterOptions options = {});

  void add(const geo::MobilityTrace& trace);
  std::uint64_t records_added() const { return total_; }

  /// Flush the pending block, append footer + trailer, and return the file.
  /// The writer is spent afterwards.
  std::string finish();

 private:
  void flush_block();

  ColumnarWriterOptions options_;
  std::string out_;
  std::vector<geo::MobilityTrace> buffer_;
  std::vector<ColumnarBlockInfo> blocks_;
  std::uint64_t total_ = 0;
};

/// Struct-of-arrays form of one decoded block: entry i across the vectors is
/// record i, in block order. This is the parse-free shape the batch map path
/// consumes (columnar_jobs.h) — the coordinate columns feed the SIMD distance
/// kernels directly, with no per-record byte round-trip.
struct TraceColumns {
  std::vector<std::int32_t> user_ids;
  std::vector<std::int64_t> timestamps;
  std::vector<double> lats;
  std::vector<double> lons;
  std::vector<double> alts_ft;

  std::size_t size() const { return lats.size(); }
  void clear() {
    user_ids.clear();
    timestamps.clear();
    lats.clear();
    lons.clear();
    alts_ft.clear();
  }
};

/// Parsed view of one columnar file: validates magic, trailer, and footer
/// CRC at construction (throws ColumnarError), then decodes blocks on
/// demand. Does not own the bytes.
class ColumnarFile {
 public:
  explicit ColumnarFile(std::string_view bytes);

  std::size_t num_blocks() const { return blocks_.size(); }
  std::uint64_t num_records() const { return total_records_; }
  const std::vector<ColumnarBlockInfo>& blocks() const { return blocks_; }

  /// Decode block `i` (CRC-checked; throws ColumnarError on corruption).
  std::vector<geo::MobilityTrace> read_block(std::size_t i) const;

  /// Decode block `i` straight into struct-of-arrays columns — the same
  /// codec walk as read_block (CRC check, trailing-bytes check, identical
  /// error surface), minus the per-record MobilityTrace assembly. Reuses
  /// `out`'s capacity across calls.
  void read_block_columns(std::size_t i, TraceColumns& out) const;

 private:
  std::string_view bytes_;
  std::vector<ColumnarBlockInfo> blocks_;
  std::uint64_t total_records_ = 0;
};

/// Iterate the traces of the blocks a [offset, offset+len) split owns: the
/// blocks whose payload starts inside the split. Holds at most one decoded
/// block in memory. A reader is driven in exactly one mode: record-at-a-time
/// (next()/trace()) or block-at-a-time (next_block_columns()) — the modes
/// share the block cursor and must not be mixed.
class ColumnarSplitReader {
 public:
  ColumnarSplitReader(std::string_view file, std::uint64_t offset,
                      std::uint64_t len);

  bool next();  ///< advance to the next trace; false when the split is done
  const geo::MobilityTrace& trace() const { return block_[pos_]; }

  /// Decode the split's next non-empty block into `out` (struct-of-arrays);
  /// false when the split is exhausted (out is cleared).
  bool next_block_columns(TraceColumns& out);

 private:
  ColumnarFile file_;
  std::size_t next_block_ = 0;  ///< next owned block to decode
  std::size_t end_block_ = 0;   ///< one past the last owned block
  std::vector<geo::MobilityTrace> block_;
  std::size_t pos_ = 0;
  bool started_ = false;
};

// --- DFS glue (mirrors geo::dataset_to_dfs / dataset_from_dfs) --------------

/// Write a dataset under `prefix` as `num_files` columnar files of
/// consecutive users (`prefix/points-NNNNN`), traces in (user, trail) order —
/// the same record order as the text and seqfile writers, so jobs over the
/// three formats see identical record streams.
void dataset_to_dfs_columnar(mr::Dfs& dfs, const std::string& prefix,
                             const geo::GeolocatedDataset& dataset,
                             int num_files = 4,
                             ColumnarWriterOptions options = {});

/// Read every columnar file under `prefix` back into a dataset.
geo::GeolocatedDataset dataset_from_dfs_columnar(const mr::Dfs& dfs,
                                                 const std::string& prefix);

/// Total records under a DFS prefix, from the footers alone (no decoding).
std::uint64_t count_dfs_columnar_records(const mr::Dfs& dfs,
                                         const std::string& prefix);

/// Stream every trace under a DFS prefix in file/record order, one decoded
/// block resident at a time — the out-of-core substitute for
/// dataset_from_dfs_columnar when the caller only needs a single pass.
void for_each_dfs_columnar_trace(
    const mr::Dfs& dfs, const std::string& prefix,
    const std::function<void(const geo::MobilityTrace&)>& fn);

// --- column codecs (exposed for tests and tools) ----------------------------

namespace colenc {

void put_varint(std::string& out, std::uint64_t v);
/// Decode at `pos`, advancing it. Throws ColumnarError past `end`.
std::uint64_t get_varint(std::string_view in, std::size_t& pos);

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// XOR-FP: append the encoding of `x` given the previous value's bits in
/// `prev` (updated). 1 control byte + 0-8 significant bytes.
void put_xorfp(std::string& out, double x, std::uint64_t& prev);
double get_xorfp(std::string_view in, std::size_t& pos, std::uint64_t& prev);

}  // namespace colenc

}  // namespace gepeto::storage
